package cgnat

import (
	"errors"
	"fmt"
	"net/netip"
	"testing"
)

func testGateway() *Gateway {
	return NewGateway(DefaultConfig(netip.MustParsePrefix("203.0.113.0/30")))
}

func TestCapacity(t *testing.T) {
	g := testGateway()
	// 4 public addresses x (65536-1024)/512 = 126 blocks each.
	if g.Capacity() != 4*126 {
		t.Errorf("Capacity = %d, want %d", g.Capacity(), 4*126)
	}
}

func TestBindAndTranslate(t *testing.T) {
	g := testGateway()
	b, err := g.Bind("sub-1")
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if !netip.MustParsePrefix("203.0.113.0/30").Contains(b.Public) {
		t.Errorf("public %v outside pool", b.Public)
	}
	if len(b.Blocks) != 1 || b.Blocks[0] != 1024 {
		t.Errorf("blocks = %v", b.Blocks)
	}
	// Idempotent.
	b2, _ := g.Bind("sub-1")
	if b2 != b {
		t.Error("rebind created a new binding")
	}

	pub, port, err := g.Translate("sub-1", 0)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if pub != b.Public || port != 1024 {
		t.Errorf("flow 0 -> %v:%d", pub, port)
	}
	// Flow beyond the first block grows the binding on the same address.
	pub2, port2, err := g.Translate("sub-1", 700)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if pub2 != b.Public {
		t.Error("binding straddled public addresses")
	}
	if port2 != b.Blocks[1]+700-512 {
		t.Errorf("flow 700 -> port %d, blocks %v", port2, b.Blocks)
	}
}

func TestTranslateBlockLimit(t *testing.T) {
	g := testGateway()
	// 4 blocks x 512 ports = flows 0..2047 fine, 2048 over the limit.
	if _, _, err := g.Translate("sub-1", 2047); err != nil {
		t.Fatalf("flow 2047: %v", err)
	}
	if _, _, err := g.Translate("sub-1", 2048); !errors.Is(err, ErrExhausted) {
		t.Errorf("flow 2048 err = %v, want exhaustion", err)
	}
}

func TestAttribution(t *testing.T) {
	g := testGateway()
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("sub-%d", i)
		if _, err := g.Bind(name); err != nil {
			t.Fatalf("Bind %s: %v", name, err)
		}
	}
	// Every allocated (addr, port) attributes back to its subscriber.
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("sub-%d", i)
		pub, port, err := g.Translate(name, 17)
		if err != nil {
			t.Fatalf("Translate %s: %v", name, err)
		}
		got, err := g.Attribute(pub, port)
		if err != nil || got != name {
			t.Errorf("Attribute(%v:%d) = %q, %v; want %q", pub, port, got, err, name)
		}
	}
	if _, err := g.Attribute(netip.MustParseAddr("203.0.113.0"), 80); !errors.Is(err, ErrNoBinding) {
		t.Errorf("well-known port attributed: %v", err)
	}
}

func TestExhaustion(t *testing.T) {
	g := NewGateway(Config{
		Public:              []netip.Prefix{netip.MustParsePrefix("203.0.113.0/32")},
		PortsPerBlock:       16384,
		BlocksPerSubscriber: 1,
		PortFloor:           1024,
	})
	// (65536-1024)/16384 = 3 blocks total.
	for i := 0; i < 3; i++ {
		if _, err := g.Bind(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatalf("Bind %d: %v", i, err)
		}
	}
	if _, err := g.Bind("overflow"); !errors.Is(err, ErrExhausted) {
		t.Errorf("4th subscriber err = %v", err)
	}
	g.Release("s0")
	if g.Subscribers() != 2 {
		t.Errorf("Subscribers = %d", g.Subscribers())
	}
}

func TestNoPortOverlapAcrossSubscribers(t *testing.T) {
	g := testGateway()
	type key struct {
		pub  netip.Addr
		port int
	}
	seen := map[key]string{}
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("s%d", i)
		for flow := 0; flow < 520; flow += 173 {
			pub, port, err := g.Translate(name, flow)
			if err != nil {
				t.Fatalf("Translate %s/%d: %v", name, flow, err)
			}
			k := key{pub, port}
			if owner, dup := seen[k]; dup && owner != name {
				t.Fatalf("%v:%d shared by %s and %s", pub, port, owner, name)
			}
			seen[k] = name
		}
	}
}

func TestPrivateAddr(t *testing.T) {
	a, err := PrivateAddr(0)
	if err != nil || a != netip.MustParseAddr("100.64.0.0") {
		t.Errorf("PrivateAddr(0) = %v, %v", a, err)
	}
	a, err = PrivateAddr(300)
	if err != nil || !SharedSpace.Contains(a) {
		t.Errorf("PrivateAddr(300) = %v, %v", a, err)
	}
	if _, err := PrivateAddr(-1); err == nil {
		t.Error("negative ordinal accepted")
	}
	if _, err := PrivateAddr(1 << 23); err == nil {
		t.Error("out-of-space ordinal accepted")
	}
}

func TestNewGatewayPanics(t *testing.T) {
	pub := []netip.Prefix{netip.MustParsePrefix("203.0.113.0/30")}
	for name, cfg := range map[string]Config{
		"no public":  {PortsPerBlock: 512, BlocksPerSubscriber: 1},
		"zero block": {Public: pub, BlocksPerSubscriber: 1},
		"bad floor":  {Public: pub, PortsPerBlock: 512, BlocksPerSubscriber: 1, PortFloor: 70000},
		"v6 public": {Public: []netip.Prefix{netip.MustParsePrefix("2001:db8::/64")},
			PortsPerBlock: 512, BlocksPerSubscriber: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewGateway did not panic", name)
				}
			}()
			NewGateway(cfg)
		}()
	}
}

// tinyGateway has two public addresses with two blocks each, so the
// address-straddle and exhaustion edges are a handful of binds away.
func tinyGateway() *Gateway {
	return NewGateway(Config{
		Public:              []netip.Prefix{netip.MustParsePrefix("198.51.100.0/31")},
		PortsPerBlock:       32256, // (65536-1024)/32256 = 2 blocks per address
		BlocksPerSubscriber: 4,
		PortFloor:           1024,
	})
}

// TestGrowNeverStraddlesAddresses: a subscriber whose address is out of
// blocks gets ErrExhausted even while the next public address still has
// free blocks — deterministic attribution requires one address per
// subscriber.
func TestGrowNeverStraddlesAddresses(t *testing.T) {
	g := tinyGateway()
	if g.Capacity() != 4 {
		t.Fatalf("tiny gateway capacity %d, want 4", g.Capacity())
	}
	// a takes block 0, b takes block 1: address 0 is now full.
	if _, err := g.Bind("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Bind("b"); err != nil {
		t.Fatal(err)
	}
	// a's second block would land on address 1: refused, though the
	// gateway still has half its capacity free.
	_, _, err := g.Translate("a", 32256)
	if !errors.Is(err, ErrExhausted) {
		t.Errorf("straddling grow: err = %v, want ErrExhausted", err)
	}
	// b can still not grow either, but a fresh subscriber starts
	// cleanly on address 1.
	if b, err := g.Bind("c"); err != nil {
		t.Fatal(err)
	} else if b.Public != netip.MustParseAddr("198.51.100.1") {
		t.Errorf("c bound to %v, want the second public address", b.Public)
	}
}

// TestTranslateBindExhausted: Translate for an unknown subscriber on a
// fully-allocated gateway surfaces the Bind failure.
func TestTranslateBindExhausted(t *testing.T) {
	g := tinyGateway()
	for i := 0; i < 4; i++ {
		if _, err := g.Bind(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := g.Translate("late", 0); !errors.Is(err, ErrExhausted) {
		t.Errorf("Translate on exhausted gateway: err = %v, want ErrExhausted", err)
	}
	// A bound subscriber growing into the exhausted pool also fails.
	if _, _, err := g.Translate("s3", 32256); !errors.Is(err, ErrExhausted) {
		t.Errorf("grow on exhausted gateway: err = %v, want ErrExhausted", err)
	}
}

// TestAttributeOtherAddress: attribution skips bindings on other public
// addresses and reports ErrNoBinding when the queried address holds none.
func TestAttributeOtherAddress(t *testing.T) {
	g := tinyGateway()
	if _, err := g.Bind("a"); err != nil {
		t.Fatal(err)
	}
	// a lives on .0; querying .1 must not attribute a's ports to it.
	if _, err := g.Attribute(netip.MustParseAddr("198.51.100.1"), 1024); !errors.Is(err, ErrNoBinding) {
		t.Errorf("Attribute on unused address: err = %v, want ErrNoBinding", err)
	}
}
