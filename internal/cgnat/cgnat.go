// Package cgnat implements the Carrier-Grade NAT substrate the paper
// describes for cellular and address-starved fixed networks (§2.1): CPEs
// receive private addresses from the RFC 6598 shared space and reach the
// Internet through an upstream NAT that multiplexes many subscribers onto
// few public addresses — the mechanism behind §4.3's mobile /24s carrying
// ~10^5 IPv6 /64 associations.
//
// The gateway implements deterministic port-block allocation (each
// subscriber gets contiguous port blocks on one public address), the
// scheme operators deploy for logging-free subscriber attribution.
package cgnat

import (
	"errors"
	"fmt"
	"net/netip"

	"dynamips/internal/netutil"
)

// SharedSpace is the RFC 6598 address block reserved for CGN inside
// addressing (100.64.0.0/10).
var SharedSpace = netip.MustParsePrefix("100.64.0.0/10")

// Config sizes a gateway.
type Config struct {
	// Public lists the gateway's public IPv4 prefixes.
	Public []netip.Prefix
	// PortsPerBlock is the size of each allocated port block.
	PortsPerBlock int
	// BlocksPerSubscriber is how many blocks a subscriber may hold.
	BlocksPerSubscriber int
	// PortFloor is the lowest translated port (well-known ports are
	// never handed out).
	PortFloor int
}

// DefaultConfig matches common deployments: 512-port blocks, up to 4 per
// subscriber, translated ports above 1024.
func DefaultConfig(public ...netip.Prefix) Config {
	return Config{Public: public, PortsPerBlock: 512, BlocksPerSubscriber: 4, PortFloor: 1024}
}

// Binding is one subscriber's port-block allocation.
type Binding struct {
	Subscriber string
	Public     netip.Addr
	// Blocks lists [start, start+PortsPerBlock) port ranges.
	Blocks []int
}

// Errors.
var (
	ErrExhausted  = errors.New("cgnat: public ports exhausted")
	ErrNoBinding  = errors.New("cgnat: no binding")
	ErrBadPrivate = errors.New("cgnat: address outside the shared space")
)

// Gateway multiplexes subscribers onto public addresses with
// deterministic port-block allocation. It is not safe for concurrent use.
type Gateway struct {
	cfg       Config
	blocksPer int // usable blocks per public address
	byName    map[string]*Binding
	next      int // global block cursor
	capacity  int // total blocks
	addrs     []netip.Addr
}

// NewGateway builds a gateway; it panics on configuration bugs.
func NewGateway(cfg Config) *Gateway {
	if len(cfg.Public) == 0 {
		panic("cgnat: no public prefixes")
	}
	if cfg.PortsPerBlock <= 0 || cfg.BlocksPerSubscriber <= 0 {
		panic("cgnat: non-positive block sizing")
	}
	if cfg.PortFloor < 0 || cfg.PortFloor >= 65536 {
		panic("cgnat: bad port floor")
	}
	g := &Gateway{cfg: cfg, byName: make(map[string]*Binding)}
	g.blocksPer = (65536 - cfg.PortFloor) / cfg.PortsPerBlock
	for _, p := range cfg.Public {
		if !p.Addr().Unmap().Is4() {
			panic(fmt.Sprintf("cgnat: non-IPv4 public prefix %v", p))
		}
		size := 1 << uint(32-p.Bits())
		for i := 0; i < size; i++ {
			a, err := netutil.HostAddr(p, uint64(i))
			if err != nil {
				panic(err)
			}
			g.addrs = append(g.addrs, a)
		}
	}
	g.capacity = len(g.addrs) * g.blocksPer
	return g
}

// Capacity returns the total number of port blocks.
func (g *Gateway) Capacity() int { return g.capacity }

// Subscribers returns the number of bound subscribers.
func (g *Gateway) Subscribers() int { return len(g.byName) }

// Bind allocates the subscriber's first port block (idempotent).
func (g *Gateway) Bind(subscriber string) (*Binding, error) {
	if b, ok := g.byName[subscriber]; ok {
		return b, nil
	}
	b := &Binding{Subscriber: subscriber}
	if err := g.grow(b); err != nil {
		return nil, err
	}
	g.byName[subscriber] = b
	return b, nil
}

// grow adds one block to a binding. Blocks for one subscriber stay on one
// public address, so attribution needs only (address, port block, time).
func (g *Gateway) grow(b *Binding) error {
	if g.next >= g.capacity {
		return ErrExhausted
	}
	addrIdx := g.next / g.blocksPer
	blockIdx := g.next % g.blocksPer
	pub := g.addrs[addrIdx]
	if len(b.Blocks) > 0 && b.Public != pub {
		// Deterministic schemes do not straddle addresses; the
		// subscriber is out of blocks on its address.
		return ErrExhausted
	}
	b.Public = pub
	b.Blocks = append(b.Blocks, g.cfg.PortFloor+blockIdx*g.cfg.PortsPerBlock)
	g.next++
	return nil
}

// Translate maps a subscriber's flow (identified by an internal ordinal)
// to its public (address, port). New flows consume ports from the
// subscriber's blocks, growing the binding up to BlocksPerSubscriber.
func (g *Gateway) Translate(subscriber string, flow int) (netip.Addr, int, error) {
	b, ok := g.byName[subscriber]
	if !ok {
		var err error
		b, err = g.Bind(subscriber)
		if err != nil {
			return netip.Addr{}, 0, err
		}
	}
	need := flow/g.cfg.PortsPerBlock + 1
	for len(b.Blocks) < need {
		if len(b.Blocks) >= g.cfg.BlocksPerSubscriber {
			return netip.Addr{}, 0, fmt.Errorf("%w: subscriber %s at block limit", ErrExhausted, subscriber)
		}
		if err := g.grow(b); err != nil {
			return netip.Addr{}, 0, err
		}
	}
	block := b.Blocks[flow/g.cfg.PortsPerBlock]
	return b.Public, block + flow%g.cfg.PortsPerBlock, nil
}

// Release frees a subscriber's binding. Deterministic CGN does not reuse
// blocks until the address cursor wraps; this gateway simply forgets the
// binding (ports are reclaimed when the gateway is rebuilt, as operators
// do on maintenance windows).
func (g *Gateway) Release(subscriber string) {
	delete(g.byName, subscriber)
}

// Attribute answers the abuse-desk question: which subscriber used this
// public (address, port)? Deterministic allocation makes this a pure
// computation over bindings — no per-flow logs needed.
func (g *Gateway) Attribute(public netip.Addr, port int) (string, error) {
	for name, b := range g.byName {
		if b.Public != public {
			continue
		}
		for _, start := range b.Blocks {
			if port >= start && port < start+g.cfg.PortsPerBlock {
				return name, nil
			}
		}
	}
	return "", ErrNoBinding
}

// PrivateAddr deterministically assigns a subscriber ordinal an address in
// the RFC 6598 shared space — what the CPE's WAN side sees under CGN.
func PrivateAddr(ordinal int) (netip.Addr, error) {
	if ordinal < 0 || uint64(ordinal) >= 1<<22 {
		return netip.Addr{}, fmt.Errorf("%w: ordinal %d", ErrBadPrivate, ordinal)
	}
	return netutil.HostAddr(SharedSpace, uint64(ordinal))
}
