package bng

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"dynamips/internal/bng/stripe"
	"dynamips/internal/sketch"
)

// Retry defaults: up to DefaultRetries re-attempts on transient errors,
// with a deterministic doubling backoff starting at DefaultRetryBase
// (250ms, 500ms, 1s, 2s — no jitter, so retry schedules are
// reproducible in tests and logs).
const (
	DefaultRetries   = 4
	DefaultRetryBase = 250 * time.Millisecond
)

// Client reads a live serve-bng daemon's API: the hook the atlas and
// CDN generators use to pull assignment-plane ground truth from a
// running BNG instead of in-process servers. Transient failures —
// connection errors and 5xx responses, the signature of an active
// daemon dying mid-pull during a failover — are retried with a bounded
// deterministic backoff so a generator survives a takeover window.
type Client struct {
	base string
	hc   *http.Client
	ctx  context.Context

	retries   int
	retryBase time.Duration
}

// NewClient builds a client for the daemon at base (e.g.
// "http://127.0.0.1:8447"). A nil hc uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{
		base:      strings.TrimRight(base, "/"),
		hc:        hc,
		ctx:       context.Background(),
		retries:   DefaultRetries,
		retryBase: DefaultRetryBase,
	}
}

// WithRetry overrides the retry budget; retries <= 0 disables retrying
// and base <= 0 keeps the default backoff. Returns the client.
func (c *Client) WithRetry(retries int, base time.Duration) *Client {
	c.retries = retries
	if base > 0 {
		c.retryBase = base
	}
	return c
}

// WithContext attaches a cancellation context: in-flight requests and
// backoff sleeps abort when it is done. Returns the client.
func (c *Client) WithContext(ctx context.Context) *Client {
	if ctx != nil {
		c.ctx = ctx
	}
	return c
}

// statusError is a non-2xx response; 5xx ones are transient.
type statusError struct {
	code   int
	status string
}

func (e *statusError) Error() string { return "status " + e.status }

// transient reports whether the error is worth a retry: anything except
// a non-5xx HTTP status (4xx means the request itself is wrong).
func transient(err error) bool {
	if se, ok := err.(*statusError); ok {
		return se.code >= 500
	}
	return true
}

// fetch GETs path with the retry budget, handing each successful
// response body to read. Bodies are fully consumed per attempt, so a
// decode error mid-stream (the daemon died mid-response) retries too.
func (c *Client) fetch(path string, read func(io.Reader) error) error {
	delay := c.retryBase
	var err error
	for attempt := 0; ; attempt++ {
		err = c.fetchOnce(path, read)
		if err == nil {
			return nil
		}
		if c.ctx.Err() != nil || attempt >= c.retries || !transient(err) {
			return fmt.Errorf("bng: GET %s: %w", path, err)
		}
		t := time.NewTimer(delay)
		select {
		case <-c.ctx.Done():
			t.Stop()
			return fmt.Errorf("bng: GET %s: %w (last error: %v)", path, c.ctx.Err(), err)
		case <-t.C:
		}
		delay *= 2
	}
}

func (c *Client) fetchOnce(path string, read func(io.Reader) error) error {
	req, err := http.NewRequestWithContext(c.ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &statusError{code: resp.StatusCode, status: resp.Status}
	}
	return read(resp.Body)
}

func (c *Client) get(path string, into any) error {
	return c.fetch(path, func(r io.Reader) error {
		if err := json.NewDecoder(r).Decode(into); err != nil {
			return fmt.Errorf("decoding: %w", err)
		}
		return nil
	})
}

// Stats fetches /stats.
func (c *Client) Stats() (StatsView, error) {
	var v StatsView
	err := c.get("/stats", &v)
	return v, err
}

// Pools fetches /pools.
func (c *Client) Pools() ([]PoolStats, error) {
	var p PoolsPayload
	if err := c.get("/pools", &p); err != nil {
		return nil, err
	}
	return p.Pools, nil
}

// Sessions fetches one /sessions page.
func (c *Client) Sessions(offset, limit int) (SessionsPage, error) {
	var p SessionsPage
	err := c.get("/sessions?offset="+strconv.Itoa(offset)+"&limit="+strconv.Itoa(limit), &p)
	return p, err
}

// AllSessions walks the full paginated listing, calling fn per page.
func (c *Client) AllSessions(limit int, fn func(SessionsPage) error) error {
	offset := 0
	for {
		page, err := c.Sessions(offset, limit)
		if err != nil {
			return err
		}
		if err := fn(page); err != nil {
			return err
		}
		if page.NextOffset == nil {
			return nil
		}
		offset = *page.NextOffset
	}
}

// HA fetches /ha, the daemon's failover posture.
func (c *Client) HA() (HAView, error) {
	var v HAView
	err := c.get("/ha", &v)
	return v, err
}

// Sketch fetches the full /sketch summary view.
func (c *Client) Sketch() (SketchView, error) {
	var v SketchView
	err := c.get("/sketch", &v)
	return v, err
}

// SketchQuantile fetches one quantile answer from /sketch.
func (c *Client) SketchQuantile(name string, p float64) (QuantileAnswer, error) {
	var a QuantileAnswer
	err := c.get("/sketch?op=quantile&name="+url.QueryEscape(name)+
		"&p="+strconv.FormatFloat(p, 'g', -1, 64), &a)
	return a, err
}

// SketchTopK fetches one heavy-hitter answer from /sketch.
func (c *Client) SketchTopK(name string, k int) (TopKAnswer, error) {
	var a TopKAnswer
	err := c.get("/sketch?op=topk&name="+url.QueryEscape(name)+"&k="+strconv.Itoa(k), &a)
	return a, err
}

// SketchCard fetches one cardinality answer from /sketch.
func (c *Client) SketchCard(name string) (CardAnswer, error) {
	var a CardAnswer
	err := c.get("/sketch?op=card&name="+url.QueryEscape(name), &a)
	return a, err
}

// SketchSet fetches /sketch?format=binary and decodes the CRC-framed
// set — the mergeable form a watcher folds across daemons or rounds.
func (c *Client) SketchSet() (*sketch.Set, error) {
	var s *sketch.Set
	err := c.fetch("/sketch?format=binary", func(r io.Reader) error {
		raw, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		s, err = sketch.DecodeSet(raw)
		return err
	})
	return s, err
}

// Snapshot fetches /snapshot and decodes the session-table codec
// stream: the standby's state-sync pull.
func (c *Client) Snapshot() ([]stripe.Session, error) {
	var recs []stripe.Session
	err := c.fetch("/snapshot", func(r io.Reader) error {
		var buf bytes.Buffer
		if _, err := io.Copy(&buf, r); err != nil {
			return err
		}
		var derr error
		recs, derr = stripe.DecodeSnapshot(&buf)
		return derr
	})
	return recs, err
}
