package bng

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Client reads a live serve-bng daemon's API: the hook the atlas and
// CDN generators use to pull assignment-plane ground truth from a
// running BNG instead of in-process servers.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the daemon at base (e.g.
// "http://127.0.0.1:8447"). A nil hc uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

func (c *Client) get(path string, into any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("bng: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bng: GET %s: status %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("bng: GET %s: decoding: %w", path, err)
	}
	return nil
}

// Stats fetches /stats.
func (c *Client) Stats() (StatsView, error) {
	var v StatsView
	err := c.get("/stats", &v)
	return v, err
}

// Pools fetches /pools.
func (c *Client) Pools() ([]PoolStats, error) {
	var p PoolsPayload
	if err := c.get("/pools", &p); err != nil {
		return nil, err
	}
	return p.Pools, nil
}

// Sessions fetches one /sessions page.
func (c *Client) Sessions(offset, limit int) (SessionsPage, error) {
	var p SessionsPage
	err := c.get("/sessions?offset="+strconv.Itoa(offset)+"&limit="+strconv.Itoa(limit), &p)
	return p, err
}

// AllSessions walks the full paginated listing, calling fn per page.
func (c *Client) AllSessions(limit int, fn func(SessionsPage) error) error {
	offset := 0
	for {
		page, err := c.Sessions(offset, limit)
		if err != nil {
			return err
		}
		if err := fn(page); err != nil {
			return err
		}
		if page.NextOffset == nil {
			return nil
		}
		offset = *page.NextOffset
	}
}
