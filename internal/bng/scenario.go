package bng

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Recovery policies for a failover scenario: what a standby taking over
// does with the session state (osvbng tests 16/17 — both happen in the
// wild and leave distinct DynamIPs signatures).
const (
	// PolicyPreserve is a lease-preserving takeover: the standby has the
	// synced session state and subscribers keep their addresses — the
	// failover is invisible in snapshots.
	PolicyPreserve = "preserve"
	// PolicyRenumber is a full renumbering takeover: the standby holds
	// no lease state, so every subscriber re-attaches and draws fresh
	// addresses — a mass renumbering event with the paper's §2.2
	// "changes due to outages" footprint.
	PolicyRenumber = "renumber"
)

// Scenario layers operator events over the baseline churn. It is part
// of the Config (and therefore the checkpoint identity): two daemons
// with the same Config+Scenario replay identical histories, failovers
// included. The zero value — and a nil *Scenario — runs the plain PR-8
// churn byte-for-byte.
type Scenario struct {
	// FailoverMeanHours draws exponential inter-failover gaps from a
	// seeded stream; FailoverAtHours pins failovers to explicit virtual
	// hours instead (both set is a validation error).
	FailoverMeanHours float64 `json:"failover_mean_hours,omitempty"`
	FailoverAtHours   []int64 `json:"failover_at_hours,omitempty"`
	// Policy is PolicyPreserve (default) or PolicyRenumber.
	Policy string `json:"policy,omitempty"`
	// CoAMeanHours adds per-subscriber RADIUS CoA-Requests at the given
	// mean interval: mid-lease renumbering without a disconnect.
	CoAMeanHours float64 `json:"coa_mean_hours,omitempty"`
	// DisconnectMeanHours adds per-subscriber RADIUS
	// Disconnect-Requests: the session is torn down and the subscriber
	// re-attaches after its downtime draw.
	DisconnectMeanHours float64 `json:"disconnect_mean_hours,omitempty"`
	// RelayHops routes DHCP groups' attach traffic through an
	// aggregation chain of this many relay/LDRA hops; RelayDrop is the
	// per-hop, per-direction loss probability applied to each exchange.
	RelayHops int     `json:"relay_hops,omitempty"`
	RelayDrop float64 `json:"relay_drop,omitempty"`
}

// EffectivePolicy resolves the default.
func (s *Scenario) EffectivePolicy() string {
	if s == nil || s.Policy == "" {
		return PolicyPreserve
	}
	return s.Policy
}

// Validate checks the scenario's ranges.
func (s *Scenario) Validate() error {
	if s == nil {
		return nil
	}
	if s.FailoverMeanHours < 0 || s.CoAMeanHours < 0 || s.DisconnectMeanHours < 0 {
		return fmt.Errorf("bng: scenario means must be non-negative")
	}
	if s.FailoverMeanHours > 0 && len(s.FailoverAtHours) > 0 {
		return fmt.Errorf("bng: scenario sets both failover-mean and failover-at")
	}
	for _, h := range s.FailoverAtHours {
		if h < 1 {
			return fmt.Errorf("bng: failover hour %d must be >= 1", h)
		}
	}
	switch s.Policy {
	case "", PolicyPreserve, PolicyRenumber:
	default:
		return fmt.Errorf("bng: unknown recovery policy %q", s.Policy)
	}
	if s.RelayHops < 0 || s.RelayHops > 8 {
		return fmt.Errorf("bng: relay hops %d outside [0, 8]", s.RelayHops)
	}
	if s.RelayDrop < 0 || s.RelayDrop > 0.9 {
		return fmt.Errorf("bng: relay drop %g outside [0, 0.9]", s.RelayDrop)
	}
	if s.RelayDrop > 0 && s.RelayHops == 0 {
		return fmt.Errorf("bng: relay drop set without relay hops")
	}
	return nil
}

// hasFailover reports whether the scenario schedules failovers.
func (s *Scenario) hasFailover() bool {
	return s != nil && (s.FailoverMeanHours > 0 || len(s.FailoverAtHours) > 0)
}

// ParseScenario parses the -scenario flag: comma-separated key=value
// pairs.
//
//	failover-mean=24          mean hours between failovers (seeded draws)
//	failover-at=12:36         explicit failover hours, colon-separated
//	policy=preserve|renumber  recovery policy
//	coa-mean=72               mean hours between per-subscriber CoAs
//	disconnect-mean=200       mean hours between operator disconnects
//	relay-hops=2              DHCP relay/LDRA aggregation depth
//	relay-drop=0.05           per-hop per-direction loss probability
func ParseScenario(spec string) (*Scenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	sc := &Scenario{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("bng: scenario field %q is not key=value", field)
		}
		var err error
		switch k {
		case "failover-mean":
			sc.FailoverMeanHours, err = parsePositiveFloat(v)
		case "failover-at":
			for _, hs := range strings.Split(v, ":") {
				h, perr := strconv.ParseInt(hs, 10, 64)
				if perr != nil {
					return nil, fmt.Errorf("bng: scenario failover-at hour %q: %w", hs, perr)
				}
				sc.FailoverAtHours = append(sc.FailoverAtHours, h)
			}
			sort.Slice(sc.FailoverAtHours, func(i, j int) bool {
				return sc.FailoverAtHours[i] < sc.FailoverAtHours[j]
			})
		case "policy":
			sc.Policy = v
		case "coa-mean":
			sc.CoAMeanHours, err = parsePositiveFloat(v)
		case "disconnect-mean":
			sc.DisconnectMeanHours, err = parsePositiveFloat(v)
		case "relay-hops":
			sc.RelayHops, err = strconv.Atoi(v)
		case "relay-drop":
			sc.RelayDrop, err = strconv.ParseFloat(v, 64)
		default:
			return nil, fmt.Errorf("bng: unknown scenario key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("bng: scenario %s=%q: %w", k, v, err)
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parsePositiveFloat(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f <= 0 {
		return 0, fmt.Errorf("must be positive")
	}
	return f, nil
}

// String renders the scenario back in flag syntax (for logs and DESIGN
// examples); nil renders empty.
func (s *Scenario) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	if s.FailoverMeanHours > 0 {
		parts = append(parts, fmt.Sprintf("failover-mean=%g", s.FailoverMeanHours))
	}
	if len(s.FailoverAtHours) > 0 {
		hs := make([]string, len(s.FailoverAtHours))
		for i, h := range s.FailoverAtHours {
			hs[i] = strconv.FormatInt(h, 10)
		}
		parts = append(parts, "failover-at="+strings.Join(hs, ":"))
	}
	if s.Policy != "" {
		parts = append(parts, "policy="+s.Policy)
	}
	if s.CoAMeanHours > 0 {
		parts = append(parts, fmt.Sprintf("coa-mean=%g", s.CoAMeanHours))
	}
	if s.DisconnectMeanHours > 0 {
		parts = append(parts, fmt.Sprintf("disconnect-mean=%g", s.DisconnectMeanHours))
	}
	if s.RelayHops > 0 {
		parts = append(parts, fmt.Sprintf("relay-hops=%d", s.RelayHops))
	}
	if s.RelayDrop > 0 {
		parts = append(parts, fmt.Sprintf("relay-drop=%g", s.RelayDrop))
	}
	return strings.Join(parts, ",")
}
