package bng

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetriesTransient: 5xx responses are retried with the
// bounded backoff until the daemon recovers — the failover window a
// generator pull must survive.
func TestClientRetriesTransient(t *testing.T) {
	d := churned(t, testConfig(5), Options{Workers: 2, RoundHours: 4}, 4)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "failing over", http.StatusServiceUnavailable)
			return
		}
		d.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()

	cl := NewClient(srv.URL, nil).WithRetry(3, time.Millisecond)
	v, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats() with transient 503s: %v", err)
	}
	if v.VirtualHours != 4 {
		t.Errorf("VirtualHours = %d, want 4", v.VirtualHours)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", got)
	}
}

// TestClientRetryExhaustion: the budget is bounded — persistent 5xx
// surfaces as an error after retries, and 4xx fails immediately.
func TestClientRetryExhaustion(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	cl := NewClient(srv.URL, nil).WithRetry(2, time.Millisecond)
	if _, err := cl.Stats(); err == nil {
		t.Fatal("Stats() succeeded against a dead daemon")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}

	calls.Store(0)
	notFound := httptest.NewServer(http.NotFoundHandler())
	defer notFound.Close()
	cl = NewClient(notFound.URL, nil).WithRetry(5, time.Millisecond)
	var v StatsView
	if err := cl.get("/stats", &v); err == nil {
		t.Fatal("get() succeeded on 404")
	}
}

// TestClientContextCancel: a cancelled context aborts the backoff sleep
// instead of burning the full retry budget.
func TestClientContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cl := NewClient(srv.URL, nil).WithContext(ctx).WithRetry(50, time.Hour)
	done := make(chan error, 1)
	go func() { _, err := cl.Stats(); done <- err }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Stats() succeeded after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled client still blocked in backoff")
	}
}

// TestHASnapshotEndpoints: /ha renders the failover posture and
// /snapshot streams the codec bytes a standby syncs from.
func TestHASnapshotEndpoints(t *testing.T) {
	sc := &Scenario{FailoverAtHours: []int64{2}, Policy: PolicyRenumber}
	d := churned(t, scenarioConfig(13, sc), Options{Workers: 2, RoundHours: 2}, 4)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	cl := NewClient(srv.URL, nil)
	ha, err := cl.HA()
	if err != nil {
		t.Fatal(err)
	}
	if ha.Role != "active" || ha.Policy != PolicyRenumber {
		t.Errorf("HA = %+v, want active/renumber", ha)
	}
	if len(ha.FailoverHours) != 1 || ha.FailoverHours[0] != 2 {
		t.Errorf("FailoverHours = %v, want [2]", ha.FailoverHours)
	}
	if ha.TableHash != d.Stats().TableHash {
		t.Errorf("HA hash %s != stats hash %s", ha.TableHash, d.Stats().TableHash)
	}
	recs, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mine := d.Table().SnapshotSorted()
	if len(recs) != len(mine) {
		t.Fatalf("snapshot decoded %d sessions, table has %d", len(recs), len(mine))
	}
	for i := range recs {
		if recs[i] != mine[i] {
			t.Fatalf("snapshot record %d differs: %+v vs %+v", i, recs[i], mine[i])
		}
	}
}
