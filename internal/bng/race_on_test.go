//go:build race

package bng

// raceEnabled: see race_off.go.
const raceEnabled = true
