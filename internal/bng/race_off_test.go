//go:build !race

package bng

// raceEnabled reports whether the race detector is compiled in; the
// million-session soak skips under it (the detector's ~10× slowdown
// would turn a throughput assertion into a flake) and runs in its own
// non-race CI step instead.
const raceEnabled = false
