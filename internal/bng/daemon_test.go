package bng

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"net/netip"
	"strconv"
	"testing"

	"dynamips/internal/bng/stripe"
)

// testConfig is a small three-group config exercising both backends
// and both families.
func testConfig(seed uint64) Config {
	cfg := DefaultConfig(3000, seed)
	cfg.ShardBits = 4
	return cfg
}

func churned(t *testing.T, cfg Config, opt Options, hours int64) *Daemon {
	t.Helper()
	d, err := New(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Churn(hours); err != nil {
		t.Fatal(err)
	}
	return d
}

func snapshotBytes(t *testing.T, d *Daemon) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func statsBytes(t *testing.T, d *Daemon) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteStats(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChurnProducesActivity sanity-checks the engine: sessions attach,
// renew, renumber and flap over a day of virtual time.
func TestChurnProducesActivity(t *testing.T) {
	d := churned(t, testConfig(7), Options{Workers: 4, RoundHours: 6}, 24)
	v := d.Stats()
	if v.VirtualHours != 24 {
		t.Errorf("VirtualHours = %d, want 24", v.VirtualHours)
	}
	if v.Subscribers != 3000 {
		t.Errorf("Subscribers = %d, want 3000", v.Subscribers)
	}
	if v.ActiveSessions < v.Subscribers*9/10 {
		t.Errorf("ActiveSessions = %d, want >= 90%% of %d", v.ActiveSessions, v.Subscribers)
	}
	if v.Events.Attaches != uint64(v.Subscribers) {
		t.Errorf("Attaches = %d, want %d", v.Events.Attaches, v.Subscribers)
	}
	if v.Events.Renews == 0 || v.Events.Renumbers == 0 || v.Events.Flaps == 0 {
		t.Errorf("expected renew/renumber/flap activity, got %+v", v.Events)
	}
	if v.Events.V4Changes == 0 {
		t.Errorf("expected v4 address changes, got %+v", v.Events)
	}
	// Sessions must carry addresses inside their group pools.
	views := d.Sessions(0, 50)
	active := 0
	for _, sv := range views {
		if !sv.Active {
			continue
		}
		active++
		addr, err := netip.ParseAddr(sv.Addr4)
		if err != nil {
			t.Fatalf("session %d: bad addr4 %q", sv.Key, sv.Addr4)
		}
		if !d.cfg.Groups[sv.Key>>32].V4.Network.Contains(addr) {
			t.Errorf("session %d: %s outside group pool", sv.Key, sv.Addr4)
		}
	}
	if active == 0 {
		t.Error("no active sessions in first page")
	}
}

// TestWorkersIdentity is the tentpole determinism proof at unit scale:
// byte-identical table snapshots and /stats output across -workers.
func TestWorkersIdentity(t *testing.T) {
	cfg := testConfig(42)
	ref := churned(t, cfg, Options{Workers: 1, RoundHours: 5}, 24)
	wantSnap := snapshotBytes(t, ref)
	wantStats := statsBytes(t, ref)
	for _, workers := range []int{2, 4, 16} {
		d := churned(t, cfg, Options{Workers: workers, RoundHours: 5}, 24)
		if !bytes.Equal(snapshotBytes(t, d), wantSnap) {
			t.Errorf("workers=%d: snapshot differs from workers=1", workers)
		}
		if !bytes.Equal(statsBytes(t, d), wantStats) {
			t.Errorf("workers=%d: stats differ from workers=1", workers)
		}
	}
}

// TestRoundGranularityInvariance: state at hour H is independent of the
// round size used to get there (rounds are stats boundaries, not
// scheduling boundaries).
func TestRoundGranularityInvariance(t *testing.T) {
	cfg := testConfig(9)
	a := churned(t, cfg, Options{Workers: 4, RoundHours: 1}, 12)
	b := churned(t, cfg, Options{Workers: 4, RoundHours: 12}, 12)
	if !bytes.Equal(snapshotBytes(t, a), snapshotBytes(t, b)) {
		t.Error("snapshot differs between RoundHours=1 and RoundHours=12")
	}
	if !bytes.Equal(statsBytes(t, a), statsBytes(t, b)) {
		t.Error("stats differ between RoundHours=1 and RoundHours=12")
	}
}

// TestResumeReplayIdentity: a daemon killed after a watermark and
// rebuilt from scratch replays to the same bytes, and continues to the
// same final state as an uninterrupted run.
func TestResumeReplayIdentity(t *testing.T) {
	cfg := testConfig(17)
	dir := t.TempDir()

	ref := churned(t, cfg, Options{Workers: 4, RoundHours: 4}, 24)

	// First incarnation: churn half way, then "crash" (drop it).
	first, err := New(cfg, Options{Workers: 2, RoundHours: 4, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Churn(12); err != nil {
		t.Fatal(err)
	}
	midSnap := snapshotBytes(t, first)

	// Second incarnation resumes by replay.
	second, err := New(cfg, Options{Workers: 8, RoundHours: 4, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h, err := second.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if h != 12 {
		t.Fatalf("Resume() = %d hours, want 12", h)
	}
	if !bytes.Equal(snapshotBytes(t, second), midSnap) {
		t.Error("replayed snapshot differs from pre-crash snapshot")
	}
	if err := second.Churn(24); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, second), snapshotBytes(t, ref)) {
		t.Error("resumed run's final snapshot differs from uninterrupted run")
	}
	if !bytes.Equal(statsBytes(t, second), statsBytes(t, ref)) {
		t.Error("resumed run's final stats differ from uninterrupted run")
	}
}

// TestResumeMismatch: a watermark from a different config is refused.
func TestResumeMismatch(t *testing.T) {
	dir := t.TempDir()
	a, err := New(testConfig(1), Options{RoundHours: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Churn(2); err != nil {
		t.Fatal(err)
	}
	b, err := New(testConfig(2), Options{RoundHours: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Resume(); !errors.Is(err, ErrWatermarkMismatch) {
		t.Errorf("Resume with foreign watermark: got %v, want ErrWatermarkMismatch", err)
	}
}

// TestResumeWithoutCheckpoint is a no-op resume.
func TestResumeWithoutCheckpoint(t *testing.T) {
	d, err := New(testConfig(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h, err := d.Resume(); err != nil || h != 0 {
		t.Errorf("Resume() = %d, %v; want 0, nil", h, err)
	}
}

// TestSnapshotRoundTripThroughCodec: the daemon's snapshot decodes back
// to the table's exact records.
func TestSnapshotRoundTripThroughCodec(t *testing.T) {
	d := churned(t, testConfig(3), Options{Workers: 4, RoundHours: 6}, 6)
	raw := snapshotBytes(t, d)
	records, err := stripe.DecodeSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := d.Table().SnapshotSorted()
	if len(records) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(records), len(want))
	}
	for i := range want {
		if records[i] != want[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, records[i], want[i])
		}
	}
}

func TestHTTPAPI(t *testing.T) {
	d := churned(t, testConfig(5), Options{Workers: 4, RoundHours: 6}, 6)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())

	t.Run("stats", func(t *testing.T) {
		v, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		want := d.Stats()
		if v.VirtualHours != want.VirtualHours || v.TableHash != want.TableHash || v.ActiveSessions != want.ActiveSessions {
			t.Errorf("client stats %+v != daemon stats %+v", v, want)
		}
	})

	t.Run("pools", func(t *testing.T) {
		pools, err := c.Pools()
		if err != nil {
			t.Fatal(err)
		}
		if len(pools) != 6 { // 3 groups × 2 families
			t.Fatalf("got %d pools, want 6", len(pools))
		}
		for _, p := range pools {
			if _, err := netip.ParsePrefix(p.Network); err != nil {
				t.Errorf("pool %s/%d: bad network %q", p.Group, p.Family, p.Network)
			}
			if p.Capacity == 0 {
				t.Errorf("pool %s/%d: zero capacity", p.Group, p.Family)
			}
			if p.Active < 0 || uint64(p.Active) > p.Capacity {
				t.Errorf("pool %s/%d: active %d outside [0, %d]", p.Group, p.Family, p.Active, p.Capacity)
			}
		}
	})

	t.Run("sessions-pagination", func(t *testing.T) {
		seen := 0
		lastKey := uint64(0)
		pages := 0
		err := c.AllSessions(700, func(p SessionsPage) error {
			pages++
			if p.Total != 3000 {
				t.Errorf("Total = %d, want 3000", p.Total)
			}
			for i, s := range p.Sessions {
				if seen > 0 || i > 0 {
					if s.Key <= lastKey {
						t.Fatalf("keys not ascending: %d after %d", s.Key, lastKey)
					}
				}
				lastKey = s.Key
			}
			seen += len(p.Sessions)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen != 3000 {
			t.Errorf("walked %d sessions, want 3000", seen)
		}
		if pages != 5 { // ceil(3000/700)
			t.Errorf("walked %d pages, want 5", pages)
		}
	})

	t.Run("sessions-bad-params", func(t *testing.T) {
		for _, q := range []string{"?offset=-1", "?offset=x", "?limit=0", "?limit=y"} {
			resp, err := srv.Client().Get(srv.URL + "/sessions" + q)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 400 {
				t.Errorf("GET /sessions%s: status %d, want 400", q, resp.StatusCode)
			}
		}
	})

	t.Run("limit-clamped", func(t *testing.T) {
		p, err := c.Sessions(0, MaxPageLimit*10)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Sessions) != MaxPageLimit {
			t.Errorf("got %d sessions, want clamp at %d", len(p.Sessions), MaxPageLimit)
		}
	})

	t.Run("method-not-allowed", func(t *testing.T) {
		for _, path := range []string{"/stats", "/pools", "/sessions"} {
			resp, err := srv.Client().Post(srv.URL+path, "text/plain", bytes.NewReader(nil))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 405 {
				t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
			}
		}
	})

	t.Run("stats-json-canonical", func(t *testing.T) {
		resp, err := srv.Client().Get(srv.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(raw, statsBytes(t, d)) {
			t.Error("/stats body differs from WriteStats output")
		}
	})
}

func TestValidateErrors(t *testing.T) {
	base := func() Config { return testConfig(1) }
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"shard-bits", func(c *Config) { c.ShardBits = 15 }},
		{"no-groups", func(c *Config) { c.Groups = nil }},
		{"no-name", func(c *Config) { c.Groups[0].Name = "" }},
		{"no-subs", func(c *Config) { c.Groups[0].Subscribers = 0 }},
		{"bad-backend", func(c *Config) { c.Groups[0].Backend = "pppoe" }},
		{"v6-as-v4", func(c *Config) { c.Groups[0].V4.Network = netip.MustParsePrefix("2001:db8::/32") }},
		{"zero-lease", func(c *Config) { c.Groups[0].V4.LeaseSeconds = 0 }},
		{"v4-pool-too-small", func(c *Config) { c.Groups[0].V4.Network = netip.MustParsePrefix("10.0.0.0/24") }},
		{"v4-unsplittable", func(c *Config) { c.Groups[0].V4.Network = netip.MustParsePrefix("10.0.0.0/28") }},
		{"v4-as-v6", func(c *Config) { c.Groups[0].V6.Network = netip.MustParsePrefix("10.0.0.0/8") }},
		{"delegated-too-long", func(c *Config) { c.Groups[0].V6.DelegatedLen = 96 }},
		{"v6-pool-too-small", func(c *Config) { c.Groups[0].V6.Network = netip.MustParsePrefix("2001:db8::/52") }},
		{"zero-renumber", func(c *Config) { c.Groups[0].RenumberMeanHours = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate accepted a broken config")
			}
		})
	}
	good := base()
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected the test config: %v", err)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	for _, subs := range []int{10, 1000, 100_000, 1_000_000} {
		cfg := DefaultConfig(subs, 1)
		if err := cfg.Validate(); err != nil {
			t.Errorf("DefaultConfig(%d): %v", subs, err)
		}
	}
}

// TestStatsJSONStable pins the stats encoding: parsing it back yields
// the same view (guards the canonical-bytes contract the crash test
// relies on).
func TestStatsJSONStable(t *testing.T) {
	d := churned(t, testConfig(11), Options{Workers: 2, RoundHours: 3}, 6)
	raw := statsBytes(t, d)
	var v StatsView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if v.TableHash != d.Stats().TableHash {
		t.Errorf("round-tripped TableHash %q != %q", v.TableHash, d.Stats().TableHash)
	}
	if _, err := strconv.ParseUint(v.TableHash, 16, 64); err != nil {
		t.Errorf("TableHash %q is not 64-bit hex: %v", v.TableHash, err)
	}
}
