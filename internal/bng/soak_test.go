package bng

import (
	"testing"
	"time"
)

// TestMillionSessionSoak is the ISSUE 8 acceptance gate at full scale:
// the daemon holds 10⁶ concurrent sessions, sustains ≥10⁶ virtual-time
// renewal/renumbering events per second through the churn loop, and
// its session-table hash is identical across worker counts.
//
// It skips under -short and under the race detector (the ~10× detector
// slowdown would make the throughput floor meaningless); verify.sh and
// CI run it in a dedicated non-race step.
func TestMillionSessionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("million-session soak skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("million-session soak skipped under the race detector")
	}
	const (
		subs        = 1_000_000
		attachEnd   = 1  // hour: all subscribers online
		churnEnd    = 25 // hours of renewal-dominated churn
		floorPerSec = 1_000_000.0
	)
	cfg := DefaultConfig(subs, 0xD1CE)

	d, err := New(cfg, Options{Workers: 0, RoundHours: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Attach phase: every subscriber comes online in hour 0.
	if err := d.Churn(attachEnd); err != nil {
		t.Fatal(err)
	}
	v := d.Stats()
	if v.ActiveSessions < subs*95/100 {
		t.Fatalf("after attach: %d active sessions, want >= 95%% of %d", v.ActiveSessions, subs)
	}
	attachEvents := v.Events.Events

	// Churn phase: measure wall-clock throughput over renewal-dominated
	// steady state.
	start := time.Now()
	if err := d.Churn(churnEnd); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	v = d.Stats()
	churnEvents := v.Events.Events - attachEvents
	perSec := float64(churnEvents) / elapsed
	t.Logf("churn: %d events in %.2fs = %.0f events/sec (active=%d renews=%d renumbers=%d flaps=%d)",
		churnEvents, elapsed, perSec, v.ActiveSessions, v.Events.Renews, v.Events.Renumbers, v.Events.Flaps)
	if v.ActiveSessions < subs*90/100 {
		t.Errorf("steady state: %d active sessions, want >= 90%% of %d", v.ActiveSessions, subs)
	}
	if churnEvents < 5_000_000 {
		t.Errorf("churn produced only %d events; the soak should exceed 5M", churnEvents)
	}
	if perSec < floorPerSec {
		t.Errorf("throughput %.0f events/sec below the 1M floor", perSec)
	}

	// Worker-count identity at scale: a second daemon driven with a
	// different fan-out must land on the same table hash.
	d2, err := New(cfg, Options{Workers: 4, RoundHours: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Churn(churnEnd); err != nil {
		t.Fatal(err)
	}
	if h1, h2 := d.Stats().TableHash, d2.Stats().TableHash; h1 != h2 {
		t.Errorf("table hash differs across worker counts: %s vs %s", h1, h2)
	}
}
