package bng

import (
	"fmt"
	"math"
	"net/netip"
	"strconv"

	"dynamips/internal/bng/stripe"
	"dynamips/internal/dhcp4"
	"dynamips/internal/dhcp6"
	"dynamips/internal/netutil"
	"dynamips/internal/radius"
	"dynamips/internal/sketch"
)

// horizonSeconds is the server-side lease/session lifetime: effectively
// infinite, so server state never expires underneath the event
// schedule (the same "lifetimes cover the horizon" modeling as
// internal/isp). The subscriber-visible renewal cadence comes from the
// group's PoolProfile.LeaseSeconds instead.
const horizonSeconds = 4_000_000_000

// splitmix gamma (same constant as internal/faultnet's streams).
const gamma = 0x9E3779B97F4A7C15

// next steps a SplitMix64 cursor in place and returns the next draw.
func next(x *uint64) uint64 {
	*x += gamma
	return stripe.Mix64(*x)
}

// expSeconds draws an exponential interval with the given mean, in
// whole seconds, floored at 1 so events always advance time.
func expSeconds(x *uint64, meanSec float64) int64 {
	u := float64(next(x)>>11) / (1 << 53) // [0, 1)
	d := -math.Log(1-u) * meanSec
	if d < 1 {
		return 1
	}
	if d > horizonSeconds {
		return horizonSeconds
	}
	return int64(d)
}

// Event kinds.
const (
	evAttach uint8 = iota
	evRenew
	evRenumber
	evFlap
	evReattach
	// evCoA and evDisconnect are scenario-driven operator actions on
	// RADIUS groups: a CoA-Request renumbers the live session in place,
	// a Disconnect-Request tears it down for a full reattach. They are
	// only ever scheduled when the scenario sets their cadences, so a
	// scenario-free config draws nothing extra and replays the legacy
	// history byte-for-byte.
	evCoA
	evDisconnect
)

// chance draws a Bernoulli(p) from the cursor, consuming no stream
// state for degenerate probabilities (faultnet's zero-consumption
// convention: p=0 profiles replay the fault-free schedule exactly).
func chance(x *uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(next(x)>>11)/(1<<53) < p
}

// event is one pending subscriber action. Each subscriber has exactly
// one event in its shard's heap at any time (a flapped-down subscriber
// holds a pending reattach). rng is the subscriber's SplitMix64 cursor;
// it travels with the event so draws are independent of processing
// order across subscribers.
type event struct {
	at   int64
	key  uint64
	rng  uint64
	idx  int32
	kind uint8
}

// eventHeap is a binary min-heap ordered by (at, key): virtual time
// first, dense subscriber key as the deterministic tie-break.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].key < h[j].key
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old)
	old[0] = old[n-1]
	*h = old[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// engClock is the shard-local virtual clock injected into the shard's
// DHCP servers; the event loop sets it to each event's timestamp.
type engClock struct{ sec int64 }

func (c *engClock) Now() int64 { return c.sec }

// subState is one subscriber's immutable identity within its shard.
type subState struct {
	key   uint64
	user  string     // RADIUS user (BackendRADIUS groups)
	duid  dhcp6.DUID // DHCPv6 client id (BackendDHCP groups with V6)
	group int32
}

// groupSrv is one group's server set within one shard, plus the
// group's cadence parameters in seconds.
type groupSrv struct {
	rad *radius.Server
	d4  *dhcp4.Server
	d6  *dhcp6.Server

	renewSec    int64
	renumberSec float64
	flapSec     float64
	downSec     float64

	// Scenario extras. coaSec/discSec are the operator-action cadences
	// (RADIUS groups only; 0 disables). relay4/ldra route DHCP attach
	// traffic through an aggregation chain, each hop dropping with
	// relayDrop per direction.
	coaSec    float64
	discSec   float64
	relay4    dhcp4.RelayChain
	ldra      dhcp6.LDRAChain
	relayDrop float64
}

// ShardStats are one shard's event totals; they sum commutatively into
// the daemon's StatsView in shard order.
type ShardStats struct {
	Events    uint64 `json:"events"`
	Attaches  uint64 `json:"attaches"`
	Renews    uint64 `json:"renews"`
	Renumbers uint64 `json:"renumbers"`
	Flaps     uint64 `json:"flaps"`
	Reattach  uint64 `json:"reattaches"`
	V4Changes uint64 `json:"v4_changes"`
	V6Changes uint64 `json:"v6_changes"`
	// Scenario counters: CoAs/Disconnects are RFC 5176 operator actions
	// delivered; FailoverRenumbers counts subscribers renumbered by a
	// failover takeover; RelayDrops counts datagrams lost on relay hops
	// and RelayOutages attaches abandoned after exhausting retries.
	CoAs              uint64 `json:"coas"`
	Disconnects       uint64 `json:"disconnects"`
	FailoverRenumbers uint64 `json:"failover_renumbers"`
	RelayDrops        uint64 `json:"relay_drops"`
	RelayOutages      uint64 `json:"relay_outages"`
}

func (s *ShardStats) add(o ShardStats) {
	s.Events += o.Events
	s.Attaches += o.Attaches
	s.Renews += o.Renews
	s.Renumbers += o.Renumbers
	s.Flaps += o.Flaps
	s.Reattach += o.Reattach
	s.V4Changes += o.V4Changes
	s.V6Changes += o.V6Changes
	s.CoAs += o.CoAs
	s.Disconnects += o.Disconnects
	s.FailoverRenumbers += o.FailoverRenumbers
	s.RelayDrops += o.RelayDrops
	s.RelayOutages += o.RelayOutages
}

// shardEngine is one stripe's complete assignment plane: its
// subscribers, its per-group server instances (carved from disjoint
// per-shard pools), its event heap, and its virtual clock. Engines
// share nothing, so any worker count processes them identically.
type shardEngine struct {
	id     int
	clock  *engClock
	subs   []subState
	srvs   []groupSrv
	events eventHeap
	stats  ShardStats
	// sk is the stripe's streaming-summary partial (churn heavy
	// hitters, session-duration quantiles, pool cardinalities). The
	// engine folds into it single-threaded; the daemon merges partials
	// in stripe order at the round barrier, so the merged set is
	// worker-count invariant byte for byte.
	sk *sketch.Set
}

// hwOf derives a subscriber's MAC from its in-group index: locally
// administered, unique within the (group, shard) server that sees it.
func hwOf(key uint64) dhcp4.HWAddr {
	idx := uint32(key)
	return dhcp4.HWAddr{0x02, 0x00, byte(idx >> 24), byte(idx >> 16), byte(idx >> 8), byte(idx)}
}

// buildEngines constructs the per-shard engines for cfg: servers carved
// from per-shard sub-pools, subscribers routed by the table's stripe
// function, and an attach event at t=0 per subscriber.
func buildEngines(cfg *Config, table *stripe.Table) ([]*shardEngine, error) {
	shards := table.Shards()
	engines := make([]*shardEngine, shards)
	for sh := 0; sh < shards; sh++ {
		e := &shardEngine{id: sh, clock: &engClock{}, sk: newEngineSketch()}
		e.srvs = make([]groupSrv, len(cfg.Groups))
		for gi := range cfg.Groups {
			g := &cfg.Groups[gi]
			gs, err := buildGroupServers(g, cfg.Scenario, cfg.ShardBits, sh, e.clock)
			if err != nil {
				return nil, err
			}
			e.srvs[gi] = gs
		}
		engines[sh] = e
	}
	// Route subscribers to shards in (group, index) order so each
	// shard's sub list — and its initial event pushes — are in dense
	// key order.
	var userBuf []byte
	for gi := range cfg.Groups {
		g := &cfg.Groups[gi]
		for i := 0; i < g.Subscribers; i++ {
			key := uint64(gi)<<32 | uint64(uint32(i))
			e := engines[table.ShardOf(key)]
			st := subState{key: key, group: int32(gi)}
			switch g.Backend {
			case BackendRADIUS:
				userBuf = append(userBuf[:0], 's')
				userBuf = strconv.AppendUint(userBuf, uint64(uint32(i)), 10)
				st.user = string(userBuf)
			case BackendDHCP:
				if g.V6 != nil {
					hw := hwOf(key)
					st.duid = dhcp6.DUIDLL([6]byte(hw))
				}
			}
			e.subs = append(e.subs, st)
			e.events.push(event{
				at:   0,
				key:  key,
				idx:  int32(len(e.subs) - 1),
				kind: evAttach,
				rng:  cfg.Seed + (key+1)*gamma,
			})
		}
	}
	return engines, nil
}

// buildGroupServers carves shard sh's pool slice out of the group's
// aggregates and instantiates the backend servers on it, plus any
// scenario machinery the group participates in.
func buildGroupServers(g *Group, sc *Scenario, shardBits, sh int, clock *engClock) (groupSrv, error) {
	gs := groupSrv{
		renewSec:    int64(g.V4.LeaseSeconds / 2),
		renumberSec: g.RenumberMeanHours * 3600,
		flapSec:     g.FlapMeanHours * 3600,
		downSec:     g.DowntimeMeanMinutes * 60,
	}
	if gs.renewSec < 1 {
		gs.renewSec = 1
	}
	pool4, err := netutil.SubPrefix(g.V4.Network, g.V4.Network.Bits()+shardBits, uint64(sh))
	if err != nil {
		return gs, fmt.Errorf("bng: group %s shard %d: carving v4 pool: %w", g.Name, sh, err)
	}
	var pool6 netip.Prefix
	if g.V6 != nil {
		pool6, err = netutil.SubPrefix(g.V6.Network, g.V6.Network.Bits()+shardBits, uint64(sh))
		if err != nil {
			return gs, fmt.Errorf("bng: group %s shard %d: carving v6 pool: %w", g.Name, sh, err)
		}
	}
	switch g.Backend {
	case BackendRADIUS:
		rc := radius.ServerConfig{
			Pools4:         []netip.Prefix{pool4},
			SessionTimeout: horizonSeconds,
			Stride:         257, // scatter active addresses across the pool's /24s
		}
		if g.V6 != nil {
			rc.Pools6 = []netip.Prefix{pool6}
			rc.DelegatedLen6 = g.V6.DelegatedLen
		}
		gs.rad = radius.NewServer(rc)
		if sc != nil {
			gs.coaSec = sc.CoAMeanHours * 3600
			gs.discSec = sc.DisconnectMeanHours * 3600
		}
	case BackendDHCP:
		serverID, err := netutil.HostAddr(pool4, 1)
		if err != nil {
			return gs, fmt.Errorf("bng: group %s shard %d: server id: %w", g.Name, sh, err)
		}
		gs.d4 = dhcp4.NewServer(dhcp4.ServerConfig{
			Pools:        []netip.Prefix{pool4},
			LeaseSeconds: horizonSeconds,
			Sticky:       true,
			ServerID:     serverID,
		}, clock)
		if g.V6 != nil {
			gs.d6 = dhcp6.NewServer(dhcp6.ServerConfig{
				Pools:        []netip.Prefix{pool6},
				DelegatedLen: g.V6.DelegatedLen,
				ValidSeconds: horizonSeconds,
				Stride:       2557, // scatter delegations across the pool
			}, clock)
		}
		if sc != nil && sc.RelayHops > 0 {
			// Relay gateways live in TEST-NET-2, outside every pool: a
			// giaddr is routing metadata, never an allocation.
			gw := netip.AddrFrom4([4]byte{198, 51, 100, 1})
			gs.relay4, err = dhcp4.NewRelayChain(gw, sc.RelayHops)
			if err != nil {
				return gs, fmt.Errorf("bng: group %s shard %d: relay chain: %w", g.Name, sh, err)
			}
			gs.ldra = dhcp6.NewLDRAChain(fmt.Sprintf("%s/sh%d", g.Name, sh), sc.RelayHops)
			gs.relayDrop = sc.RelayDrop
		}
	}
	return gs, nil
}

// advance processes every pending event with at <= until against the
// shard's borrowed stripe, leaving the clock at until.
func (e *shardEngine) advance(b stripe.Borrowed, until int64) error {
	for len(e.events) > 0 && e.events[0].at <= until {
		ev := e.pop()
		e.clock.sec = ev.at
		e.stats.Events++
		sub := &e.subs[ev.idx]
		g := &e.srvs[sub.group]
		switch ev.kind {
		case evAttach, evReattach, evRenumber:
			ok, err := e.assign(b, &ev, sub, g)
			if err != nil {
				return err
			}
			if !ok {
				// The relay chain ate every attempt: the subscriber stays
				// down and retries after a fresh downtime draw.
				down := expSeconds(&ev.rng, g.downSec)
				e.events.push(event{at: ev.at + down, key: ev.key, idx: ev.idx, kind: evReattach, rng: ev.rng})
				continue
			}
			e.scheduleNext(&ev, g)
		case evCoA:
			if err := e.coa(b, &ev, sub, g); err != nil {
				return err
			}
			e.scheduleNext(&ev, g)
		case evDisconnect:
			if err := e.disconnect(b, &ev, sub, g); err != nil {
				return err
			}
			down := expSeconds(&ev.rng, g.downSec)
			e.events.push(event{at: ev.at + down, key: ev.key, idx: ev.idx, kind: evReattach, rng: ev.rng})
		case evRenew:
			if s, ok := b.Get(ev.key); ok {
				s.Renews++
				s.Expiry = ev.at + int64(2)*g.renewSec
				b.Put(s)
			}
			e.stats.Renews++
			e.scheduleNext(&ev, g)
		case evFlap:
			e.release(b, &ev, sub, g)
			down := expSeconds(&ev.rng, g.downSec)
			e.events.push(event{at: ev.at + down, key: ev.key, idx: ev.idx, kind: evReattach, rng: ev.rng})
		}
	}
	e.clock.sec = until
	return nil
}

func (e *shardEngine) pop() event { return e.events.pop() }

// assign (re)allocates the subscriber's addresses through its backend
// and writes the resulting session record, bumping Gen when either
// family's assignment changed. ok=false (no error) means a relay-routed
// attach exhausted its wire attempts; the subscriber holds no record or
// server state and the caller schedules the retry.
func (e *shardEngine) assign(b stripe.Borrowed, ev *event, sub *subState, g *groupSrv) (bool, error) {
	var (
		addr4  uint32
		p6hi   uint64
		p6len  uint8
		renum  = ev.kind == evRenumber
		reatt  = ev.kind == evReattach
		newTxn = uint32(next(&ev.rng))
	)
	switch {
	case g.rad != nil:
		sess, err := g.rad.StartSession(sub.user, ev.at)
		if err != nil {
			return false, fmt.Errorf("bng: shard %d key %#x: radius: %w", e.id, ev.key, err)
		}
		addr4 = netutil.U32(sess.Addr4)
		if sess.Prefix6.IsValid() {
			p6hi, _ = netutil.U128(sess.Prefix6.Addr())
			p6len = uint8(sess.Prefix6.Bits())
		}
	case len(g.relay4) > 0:
		// Wire-level attach through the aggregation chain: every
		// datagram crosses the relays and may be lost on any hop.
		ok, err := e.relayAssign(b, ev, sub, g, renum, &addr4, &p6hi, &p6len)
		if err != nil || !ok {
			return ok, err
		}
	default:
		hw := hwOf(ev.key)
		if renum {
			// A forced v4 renumber releases before reacquiring; the
			// sticky server re-offers the same address (stable
			// business addressing), while v6 Reassign forces a fresh
			// delegation.
			if _, err := g.d4.Handle(dhcp4.NewMessage(dhcp4.Release, newTxn, hw)); err != nil {
				return false, fmt.Errorf("bng: shard %d key %#x: dhcp4 release: %w", e.id, ev.key, err)
			}
		}
		lease, err := g.d4.Acquire(hw, newTxn)
		if err != nil {
			return false, fmt.Errorf("bng: shard %d key %#x: dhcp4: %w", e.id, ev.key, err)
		}
		addr4 = netutil.U32(lease.Addr)
		if g.d6 != nil {
			var bind dhcp6.Binding
			if renum {
				bind, err = g.d6.Reassign(sub.duid, newTxn)
			} else {
				bind, err = g.d6.Acquire(sub.duid, newTxn)
			}
			if err != nil {
				return false, fmt.Errorf("bng: shard %d key %#x: dhcp6: %w", e.id, ev.key, err)
			}
			p6hi, _ = netutil.U128(bind.Prefix.Addr())
			p6len = uint8(bind.Prefix.Bits())
		}
	}
	old, had := b.Get(ev.key)
	s := stripe.Session{
		Key:     ev.key,
		Addr4:   addr4,
		Pfx6Hi:  p6hi,
		Pfx6Len: p6len,
		Start:   ev.at,
		Expiry:  ev.at + 2*g.renewSec,
		State:   stripe.StateActive,
	}
	if had {
		s.Start = old.Start
		s.Gen = old.Gen
		s.Renews = old.Renews
		if old.Addr4 != addr4 {
			s.Gen++
			e.stats.V4Changes++
			e.skV4Change(old.Addr4)
		}
		if old.Pfx6Hi != p6hi || old.Pfx6Len != p6len {
			if old.Addr4 == addr4 {
				s.Gen++
			}
			e.stats.V6Changes++
			e.skV6Change(old.Pfx6Hi, old.Pfx6Len)
		}
	}
	b.Put(s)
	e.skAssign(addr4, p6hi, p6len)
	switch {
	case renum:
		e.stats.Renumbers++
	case reatt:
		e.stats.Reattach++
	default:
		e.stats.Attaches++
	}
	return true, nil
}

// relayAttemptCap bounds wire-exchange retries behind a lossy relay
// chain within one virtual attach.
const relayAttemptCap = 16

// crossRelays draws per-hop loss for one direction of one datagram from
// the subscriber's cursor. It reports whether the datagram survived.
func (e *shardEngine) crossRelays(g *groupSrv, rng *uint64) bool {
	for h := 0; h < len(g.relay4); h++ {
		if chance(rng, g.relayDrop) {
			e.stats.RelayDrops++
			return false
		}
	}
	return true
}

// relayX4 pushes one DHCPv4 message up the relay chain, through the
// wire codec into the shard's server, and the reply back down. ok=false
// means the request or its reply was lost on a hop.
func (e *shardEngine) relayX4(g *groupSrv, msg *dhcp4.Message, rng *uint64) (*dhcp4.Message, bool, error) {
	fwd, err := g.relay4.Forward(msg)
	if err != nil {
		return nil, false, fmt.Errorf("bng: shard %d: relay forward: %w", e.id, err)
	}
	if !e.crossRelays(g, rng) {
		return nil, false, nil
	}
	wire, err := dhcp4.Unmarshal(fwd.Marshal())
	if err != nil {
		return nil, false, fmt.Errorf("bng: shard %d: relay codec: %w", e.id, err)
	}
	rep, err := g.d4.Handle(wire)
	if err != nil {
		return nil, false, fmt.Errorf("bng: shard %d: relayed dhcp4: %w", e.id, err)
	}
	if rep == nil {
		return nil, true, nil // Release elicits no reply
	}
	if !e.crossRelays(g, rng) {
		return nil, false, nil
	}
	back, err := g.relay4.Return(rep)
	if err != nil {
		return nil, false, fmt.Errorf("bng: shard %d: relay return: %w", e.id, err)
	}
	return back, true, nil
}

// relayAcquire4 runs the full DORA exchange across the relay chain,
// redrawing the transaction id per attempt.
func (e *shardEngine) relayAcquire4(g *groupSrv, hw dhcp4.HWAddr, rng *uint64) (netip.Addr, bool, error) {
	for attempt := 0; attempt < relayAttemptCap; attempt++ {
		xid := uint32(next(rng))
		offer, ok, err := e.relayX4(g, dhcp4.NewMessage(dhcp4.Discover, xid, hw), rng)
		if err != nil {
			return netip.Addr{}, false, err
		}
		if !ok {
			continue
		}
		req := dhcp4.NewMessage(dhcp4.Request, xid, hw)
		req.SetAddrOption(dhcp4.OptRequestedIP, offer.YIAddr)
		ack, ok, err := e.relayX4(g, req, rng)
		if err != nil {
			return netip.Addr{}, false, err
		}
		if !ok || ack.Type() != dhcp4.ACK {
			continue
		}
		return ack.YIAddr, true, nil
	}
	return netip.Addr{}, false, nil
}

// relayAcquire6 runs a rapid-commit Solicit through the LDRA chain:
// encapsulated on the way up, the Relay-reply peeled on the way down.
func (e *shardEngine) relayAcquire6(g *groupSrv, duid dhcp6.DUID, rng *uint64) (netip.Prefix, bool, error) {
	for attempt := 0; attempt < relayAttemptCap; attempt++ {
		sol := dhcp6.NewMessage(dhcp6.Solicit, uint32(next(rng)), duid)
		sol.RapidCommit = true
		rm, err := g.ldra.Wrap(sol, netip.IPv6Unspecified())
		if err != nil {
			return netip.Prefix{}, false, fmt.Errorf("bng: shard %d: ldra wrap: %w", e.id, err)
		}
		if !e.crossLDRA(g, rng) {
			continue
		}
		parsed, err := dhcp6.UnmarshalRelay(rm.Marshal())
		if err != nil {
			return netip.Prefix{}, false, fmt.Errorf("bng: shard %d: ldra codec: %w", e.id, err)
		}
		repRM, err := g.d6.HandleRelay(parsed)
		if err != nil {
			return netip.Prefix{}, false, fmt.Errorf("bng: shard %d: relayed dhcp6: %w", e.id, err)
		}
		if !e.crossLDRA(g, rng) {
			continue
		}
		rep, err := g.ldra.Unwrap(repRM)
		if err != nil {
			return netip.Prefix{}, false, fmt.Errorf("bng: shard %d: ldra unwrap: %w", e.id, err)
		}
		if len(rep.IAPDs) == 0 || len(rep.IAPDs[0].Prefixes) == 0 {
			continue
		}
		return rep.IAPDs[0].Prefixes[0].Prefix, true, nil
	}
	return netip.Prefix{}, false, nil
}

// crossLDRA draws per-hop loss for one direction of a v6 datagram.
func (e *shardEngine) crossLDRA(g *groupSrv, rng *uint64) bool {
	for h := 0; h < len(g.ldra); h++ {
		if chance(rng, g.relayDrop) {
			e.stats.RelayDrops++
			return false
		}
	}
	return true
}

// relayAssign is the relay-routed attach path. On success it fills the
// assignment out-params; ok=false means the exchange was abandoned and
// all partial state rolled back.
func (e *shardEngine) relayAssign(b stripe.Borrowed, ev *event, sub *subState, g *groupSrv, renum bool, addr4 *uint32, p6hi *uint64, p6len *uint8) (bool, error) {
	hw := hwOf(ev.key)
	if renum {
		// The release may itself be lost on a hop; the sticky server
		// then still holds the old binding and simply re-offers it.
		if _, _, err := e.relayX4(g, dhcp4.NewMessage(dhcp4.Release, uint32(next(&ev.rng)), hw), &ev.rng); err != nil {
			return false, err
		}
	}
	a4, ok, err := e.relayAcquire4(g, hw, &ev.rng)
	if err != nil {
		return false, err
	}
	if !ok {
		e.relayFail(b, ev, sub, g)
		return false, nil
	}
	*addr4 = netutil.U32(a4)
	if g.d6 == nil {
		return true, nil
	}
	if renum {
		// Renumbering stays programmatic: Reassign's
		// allocate-before-free contract is what guarantees a fresh
		// prefix, and it has no single-message wire equivalent.
		bind, err := g.d6.Reassign(sub.duid, uint32(next(&ev.rng)))
		if err != nil {
			return false, fmt.Errorf("bng: shard %d key %#x: dhcp6: %w", e.id, ev.key, err)
		}
		*p6hi, _ = netutil.U128(bind.Prefix.Addr())
		*p6len = uint8(bind.Prefix.Bits())
		return true, nil
	}
	p6, ok, err := e.relayAcquire6(g, sub.duid, &ev.rng)
	if err != nil {
		return false, err
	}
	if !ok {
		e.relayFail(b, ev, sub, g)
		return false, nil
	}
	*p6hi, _ = netutil.U128(p6.Addr())
	*p6len = uint8(p6.Bits())
	return true, nil
}

// relayFail abandons an attach after the relay chain exhausted every
// attempt: any partial server state and the session record are dropped
// so the retry starts clean.
func (e *shardEngine) relayFail(b stripe.Borrowed, ev *event, sub *subState, g *groupSrv) {
	e.stats.RelayOutages++
	_, _ = g.d4.Handle(dhcp4.NewMessage(dhcp4.Release, uint32(next(&ev.rng)), hwOf(ev.key)))
	if g.d6 != nil {
		g.d6.ReleaseBinding(sub.duid)
	}
	b.Delete(ev.key)
}

// coa delivers an RFC 5176 CoA-Request through the wire codec and the
// group's RADIUS server, then applies the ACK's fresh addresses to the
// session record: operator-forced renumbering without a disconnect.
func (e *shardEngine) coa(b stripe.Borrowed, ev *event, sub *subState, g *groupSrv) error {
	req := radius.New(radius.CoARequest, byte(next(&ev.rng)))
	req.AddString(radius.AttrUserName, sub.user)
	wire := req.EncodeRequest(g.rad.Secret())
	if err := radius.VerifyRequest(wire, g.rad.Secret()); err != nil {
		return fmt.Errorf("bng: shard %d key %#x: coa auth: %w", e.id, ev.key, err)
	}
	parsed, err := radius.Parse(wire)
	if err != nil {
		return fmt.Errorf("bng: shard %d key %#x: coa parse: %w", e.id, ev.key, err)
	}
	rep, err := g.rad.Handle(parsed, ev.at)
	if err != nil {
		return fmt.Errorf("bng: shard %d key %#x: coa: %w", e.id, ev.key, err)
	}
	e.stats.CoAs++
	if rep.Code != radius.CoAACK {
		return nil // NAKed: the subscriber keeps its current lease
	}
	var addr4 uint32
	if a4, ok := rep.GetAddr4(radius.AttrFramedIPAddress); ok {
		addr4 = netutil.U32(a4)
	}
	var (
		p6hi  uint64
		p6len uint8
	)
	if p6, ok := rep.GetPrefix6(radius.AttrDelegatedIPv6Prefix); ok {
		p6hi, _ = netutil.U128(p6.Addr())
		p6len = uint8(p6.Bits())
	}
	if old, had := b.Get(ev.key); had {
		s := old
		s.Addr4 = addr4
		s.Pfx6Hi = p6hi
		s.Pfx6Len = p6len
		if old.Addr4 != addr4 {
			s.Gen++
			e.stats.V4Changes++
			e.skV4Change(old.Addr4)
		}
		if old.Pfx6Hi != p6hi || old.Pfx6Len != p6len {
			if old.Addr4 == addr4 {
				s.Gen++
			}
			e.stats.V6Changes++
			e.skV6Change(old.Pfx6Hi, old.Pfx6Len)
		}
		b.Put(s)
		e.skAssign(addr4, p6hi, p6len)
	}
	return nil
}

// disconnect tears the session down with an RFC 5176 Disconnect-Request
// through the wire codec; the caller schedules the reattach.
func (e *shardEngine) disconnect(b stripe.Borrowed, ev *event, sub *subState, g *groupSrv) error {
	req := radius.New(radius.DisconnectRequest, byte(next(&ev.rng)))
	req.AddString(radius.AttrUserName, sub.user)
	parsed, err := radius.Parse(req.EncodeRequest(g.rad.Secret()))
	if err != nil {
		return fmt.Errorf("bng: shard %d key %#x: disconnect parse: %w", e.id, ev.key, err)
	}
	if _, err := g.rad.Handle(parsed, ev.at); err != nil {
		return fmt.Errorf("bng: shard %d key %#x: disconnect: %w", e.id, ev.key, err)
	}
	e.stats.Disconnects++
	if s, ok := b.Get(ev.key); ok {
		e.skSessionEnd(s.Start, ev.at)
	}
	b.Delete(ev.key)
	return nil
}

// failoverRenumber applies a renumbering takeover at atSec: the standby
// that assumed this shard holds no lease state, so every subscriber is
// forced through reattachment. Two passes — release everything first,
// then reacquire in dense key order — so the LIFO free lists cannot
// hand a subscriber its own address straight back. Fresh per-subscriber
// cursors derived from (seed, atSec, key) leave the traveling event
// cursors untouched: the post-failover event schedule is identical to
// an uninterrupted run, only the assignments change.
func (e *shardEngine) failoverRenumber(b stripe.Borrowed, atSec int64, seed uint64) error {
	e.clock.sec = atSec
	active := make([]int, 0, len(e.subs))
	for i := range e.subs {
		sub := &e.subs[i]
		g := &e.srvs[sub.group]
		_, had := b.Get(sub.key)
		if g.rad != nil {
			if had {
				g.rad.StopSession(sub.user)
			}
		} else {
			// Forget clears even the sticky memory, so every DHCP
			// subscriber — online or mid-flap — draws fresh afterwards.
			g.d4.Forget(hwOf(sub.key))
			if g.d6 != nil {
				g.d6.ReleaseBinding(sub.duid)
			}
		}
		if had {
			active = append(active, i)
		}
	}
	for _, i := range active {
		sub := &e.subs[i]
		g := &e.srvs[sub.group]
		rng := (seed ^ uint64(atSec)*gamma) + (sub.key+1)*gamma
		var (
			addr4 uint32
			p6hi  uint64
			p6len uint8
		)
		if g.rad != nil {
			sess, err := g.rad.StartSession(sub.user, atSec)
			if err != nil {
				return fmt.Errorf("bng: shard %d key %#x: failover radius: %w", e.id, sub.key, err)
			}
			addr4 = netutil.U32(sess.Addr4)
			if sess.Prefix6.IsValid() {
				p6hi, _ = netutil.U128(sess.Prefix6.Addr())
				p6len = uint8(sess.Prefix6.Bits())
			}
		} else {
			lease, err := g.d4.Acquire(hwOf(sub.key), uint32(next(&rng)))
			if err != nil {
				return fmt.Errorf("bng: shard %d key %#x: failover dhcp4: %w", e.id, sub.key, err)
			}
			addr4 = netutil.U32(lease.Addr)
			if g.d6 != nil {
				bind, err := g.d6.Acquire(sub.duid, uint32(next(&rng)))
				if err != nil {
					return fmt.Errorf("bng: shard %d key %#x: failover dhcp6: %w", e.id, sub.key, err)
				}
				p6hi, _ = netutil.U128(bind.Prefix.Addr())
				p6len = uint8(bind.Prefix.Bits())
			}
		}
		old, _ := b.Get(sub.key)
		s := old
		s.Addr4 = addr4
		s.Pfx6Hi = p6hi
		s.Pfx6Len = p6len
		if old.Addr4 != addr4 {
			s.Gen++
			e.stats.V4Changes++
			e.skV4Change(old.Addr4)
		}
		if old.Pfx6Hi != p6hi || old.Pfx6Len != p6len {
			if old.Addr4 == addr4 {
				s.Gen++
			}
			e.stats.V6Changes++
			e.skV6Change(old.Pfx6Hi, old.Pfx6Len)
		}
		b.Put(s)
		e.skAssign(addr4, p6hi, p6len)
		e.stats.FailoverRenumbers++
	}
	return nil
}

// release tears the subscriber's server-side state down and deletes its
// session record.
func (e *shardEngine) release(b stripe.Borrowed, ev *event, sub *subState, g *groupSrv) {
	switch {
	case g.rad != nil:
		g.rad.StopSession(sub.user)
	default:
		hw := hwOf(ev.key)
		g.d4.Handle(dhcp4.NewMessage(dhcp4.Release, uint32(next(&ev.rng)), hw))
		if g.d6 != nil {
			g.d6.ReleaseBinding(sub.duid)
		}
	}
	if s, ok := b.Get(ev.key); ok {
		e.skSessionEnd(s.Start, ev.at)
	}
	b.Delete(ev.key)
	e.stats.Flaps++
}

// scheduleNext draws the subscriber's next action — routine renewal at
// T1 (lease/2), exponential renumbering, or an exponential flap — and
// pushes whichever comes first. Ties resolve renew < renumber < flap.
func (e *shardEngine) scheduleNext(ev *event, g *groupSrv) {
	in := g.renewSec
	kind := evRenew
	if rn := expSeconds(&ev.rng, g.renumberSec); rn < in {
		in, kind = rn, evRenumber
	}
	if fl := expSeconds(&ev.rng, g.flapSec); fl < in {
		in, kind = fl, evFlap
	}
	// Scenario operator actions: drawn only when the cadence is set, so
	// a scenario-free config consumes no extra cursor state.
	if g.coaSec > 0 {
		if ca := expSeconds(&ev.rng, g.coaSec); ca < in {
			in, kind = ca, evCoA
		}
	}
	if g.discSec > 0 {
		if dc := expSeconds(&ev.rng, g.discSec); dc < in {
			in, kind = dc, evDisconnect
		}
	}
	e.events.push(event{at: ev.at + in, key: ev.key, idx: ev.idx, kind: kind, rng: ev.rng})
}
