package bng

import (
	"fmt"
	"math"
	"net/netip"
	"strconv"

	"dynamips/internal/bng/stripe"
	"dynamips/internal/dhcp4"
	"dynamips/internal/dhcp6"
	"dynamips/internal/netutil"
	"dynamips/internal/radius"
)

// horizonSeconds is the server-side lease/session lifetime: effectively
// infinite, so server state never expires underneath the event
// schedule (the same "lifetimes cover the horizon" modeling as
// internal/isp). The subscriber-visible renewal cadence comes from the
// group's PoolProfile.LeaseSeconds instead.
const horizonSeconds = 4_000_000_000

// splitmix gamma (same constant as internal/faultnet's streams).
const gamma = 0x9E3779B97F4A7C15

// next steps a SplitMix64 cursor in place and returns the next draw.
func next(x *uint64) uint64 {
	*x += gamma
	return stripe.Mix64(*x)
}

// expSeconds draws an exponential interval with the given mean, in
// whole seconds, floored at 1 so events always advance time.
func expSeconds(x *uint64, meanSec float64) int64 {
	u := float64(next(x)>>11) / (1 << 53) // [0, 1)
	d := -math.Log(1-u) * meanSec
	if d < 1 {
		return 1
	}
	if d > horizonSeconds {
		return horizonSeconds
	}
	return int64(d)
}

// Event kinds.
const (
	evAttach uint8 = iota
	evRenew
	evRenumber
	evFlap
	evReattach
)

// event is one pending subscriber action. Each subscriber has exactly
// one event in its shard's heap at any time (a flapped-down subscriber
// holds a pending reattach). rng is the subscriber's SplitMix64 cursor;
// it travels with the event so draws are independent of processing
// order across subscribers.
type event struct {
	at   int64
	key  uint64
	rng  uint64
	idx  int32
	kind uint8
}

// eventHeap is a binary min-heap ordered by (at, key): virtual time
// first, dense subscriber key as the deterministic tie-break.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].key < h[j].key
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old)
	old[0] = old[n-1]
	*h = old[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// engClock is the shard-local virtual clock injected into the shard's
// DHCP servers; the event loop sets it to each event's timestamp.
type engClock struct{ sec int64 }

func (c *engClock) Now() int64 { return c.sec }

// subState is one subscriber's immutable identity within its shard.
type subState struct {
	key   uint64
	user  string     // RADIUS user (BackendRADIUS groups)
	duid  dhcp6.DUID // DHCPv6 client id (BackendDHCP groups with V6)
	group int32
}

// groupSrv is one group's server set within one shard, plus the
// group's cadence parameters in seconds.
type groupSrv struct {
	rad *radius.Server
	d4  *dhcp4.Server
	d6  *dhcp6.Server

	renewSec    int64
	renumberSec float64
	flapSec     float64
	downSec     float64
}

// ShardStats are one shard's event totals; they sum commutatively into
// the daemon's StatsView in shard order.
type ShardStats struct {
	Events    uint64 `json:"events"`
	Attaches  uint64 `json:"attaches"`
	Renews    uint64 `json:"renews"`
	Renumbers uint64 `json:"renumbers"`
	Flaps     uint64 `json:"flaps"`
	Reattach  uint64 `json:"reattaches"`
	V4Changes uint64 `json:"v4_changes"`
	V6Changes uint64 `json:"v6_changes"`
}

func (s *ShardStats) add(o ShardStats) {
	s.Events += o.Events
	s.Attaches += o.Attaches
	s.Renews += o.Renews
	s.Renumbers += o.Renumbers
	s.Flaps += o.Flaps
	s.Reattach += o.Reattach
	s.V4Changes += o.V4Changes
	s.V6Changes += o.V6Changes
}

// shardEngine is one stripe's complete assignment plane: its
// subscribers, its per-group server instances (carved from disjoint
// per-shard pools), its event heap, and its virtual clock. Engines
// share nothing, so any worker count processes them identically.
type shardEngine struct {
	id     int
	clock  *engClock
	subs   []subState
	srvs   []groupSrv
	events eventHeap
	stats  ShardStats
}

// hwOf derives a subscriber's MAC from its in-group index: locally
// administered, unique within the (group, shard) server that sees it.
func hwOf(key uint64) dhcp4.HWAddr {
	idx := uint32(key)
	return dhcp4.HWAddr{0x02, 0x00, byte(idx >> 24), byte(idx >> 16), byte(idx >> 8), byte(idx)}
}

// buildEngines constructs the per-shard engines for cfg: servers carved
// from per-shard sub-pools, subscribers routed by the table's stripe
// function, and an attach event at t=0 per subscriber.
func buildEngines(cfg *Config, table *stripe.Table) ([]*shardEngine, error) {
	shards := table.Shards()
	engines := make([]*shardEngine, shards)
	for sh := 0; sh < shards; sh++ {
		e := &shardEngine{id: sh, clock: &engClock{}}
		e.srvs = make([]groupSrv, len(cfg.Groups))
		for gi := range cfg.Groups {
			g := &cfg.Groups[gi]
			gs, err := buildGroupServers(g, cfg.ShardBits, sh, e.clock)
			if err != nil {
				return nil, err
			}
			e.srvs[gi] = gs
		}
		engines[sh] = e
	}
	// Route subscribers to shards in (group, index) order so each
	// shard's sub list — and its initial event pushes — are in dense
	// key order.
	var userBuf []byte
	for gi := range cfg.Groups {
		g := &cfg.Groups[gi]
		for i := 0; i < g.Subscribers; i++ {
			key := uint64(gi)<<32 | uint64(uint32(i))
			e := engines[table.ShardOf(key)]
			st := subState{key: key, group: int32(gi)}
			switch g.Backend {
			case BackendRADIUS:
				userBuf = append(userBuf[:0], 's')
				userBuf = strconv.AppendUint(userBuf, uint64(uint32(i)), 10)
				st.user = string(userBuf)
			case BackendDHCP:
				if g.V6 != nil {
					hw := hwOf(key)
					st.duid = dhcp6.DUIDLL([6]byte(hw))
				}
			}
			e.subs = append(e.subs, st)
			e.events.push(event{
				at:   0,
				key:  key,
				idx:  int32(len(e.subs) - 1),
				kind: evAttach,
				rng:  cfg.Seed + (key+1)*gamma,
			})
		}
	}
	return engines, nil
}

// buildGroupServers carves shard sh's pool slice out of the group's
// aggregates and instantiates the backend servers on it.
func buildGroupServers(g *Group, shardBits, sh int, clock *engClock) (groupSrv, error) {
	gs := groupSrv{
		renewSec:    int64(g.V4.LeaseSeconds / 2),
		renumberSec: g.RenumberMeanHours * 3600,
		flapSec:     g.FlapMeanHours * 3600,
		downSec:     g.DowntimeMeanMinutes * 60,
	}
	if gs.renewSec < 1 {
		gs.renewSec = 1
	}
	pool4, err := netutil.SubPrefix(g.V4.Network, g.V4.Network.Bits()+shardBits, uint64(sh))
	if err != nil {
		return gs, fmt.Errorf("bng: group %s shard %d: carving v4 pool: %w", g.Name, sh, err)
	}
	var pool6 netip.Prefix
	if g.V6 != nil {
		pool6, err = netutil.SubPrefix(g.V6.Network, g.V6.Network.Bits()+shardBits, uint64(sh))
		if err != nil {
			return gs, fmt.Errorf("bng: group %s shard %d: carving v6 pool: %w", g.Name, sh, err)
		}
	}
	switch g.Backend {
	case BackendRADIUS:
		rc := radius.ServerConfig{
			Pools4:         []netip.Prefix{pool4},
			SessionTimeout: horizonSeconds,
			Stride:         257, // scatter active addresses across the pool's /24s
		}
		if g.V6 != nil {
			rc.Pools6 = []netip.Prefix{pool6}
			rc.DelegatedLen6 = g.V6.DelegatedLen
		}
		gs.rad = radius.NewServer(rc)
	case BackendDHCP:
		serverID, err := netutil.HostAddr(pool4, 1)
		if err != nil {
			return gs, fmt.Errorf("bng: group %s shard %d: server id: %w", g.Name, sh, err)
		}
		gs.d4 = dhcp4.NewServer(dhcp4.ServerConfig{
			Pools:        []netip.Prefix{pool4},
			LeaseSeconds: horizonSeconds,
			Sticky:       true,
			ServerID:     serverID,
		}, clock)
		if g.V6 != nil {
			gs.d6 = dhcp6.NewServer(dhcp6.ServerConfig{
				Pools:        []netip.Prefix{pool6},
				DelegatedLen: g.V6.DelegatedLen,
				ValidSeconds: horizonSeconds,
				Stride:       2557, // scatter delegations across the pool
			}, clock)
		}
	}
	return gs, nil
}

// advance processes every pending event with at <= until against the
// shard's borrowed stripe, leaving the clock at until.
func (e *shardEngine) advance(b stripe.Borrowed, until int64) error {
	for len(e.events) > 0 && e.events[0].at <= until {
		ev := e.pop()
		e.clock.sec = ev.at
		e.stats.Events++
		sub := &e.subs[ev.idx]
		g := &e.srvs[sub.group]
		switch ev.kind {
		case evAttach, evReattach, evRenumber:
			if err := e.assign(b, &ev, sub, g); err != nil {
				return err
			}
			e.scheduleNext(&ev, g)
		case evRenew:
			if s, ok := b.Get(ev.key); ok {
				s.Renews++
				s.Expiry = ev.at + int64(2)*g.renewSec
				b.Put(s)
			}
			e.stats.Renews++
			e.scheduleNext(&ev, g)
		case evFlap:
			e.release(b, &ev, sub, g)
			down := expSeconds(&ev.rng, g.downSec)
			e.events.push(event{at: ev.at + down, key: ev.key, idx: ev.idx, kind: evReattach, rng: ev.rng})
		}
	}
	e.clock.sec = until
	return nil
}

func (e *shardEngine) pop() event { return e.events.pop() }

// assign (re)allocates the subscriber's addresses through its backend
// and writes the resulting session record, bumping Gen when either
// family's assignment changed.
func (e *shardEngine) assign(b stripe.Borrowed, ev *event, sub *subState, g *groupSrv) error {
	var (
		addr4  uint32
		p6hi   uint64
		p6len  uint8
		renum  = ev.kind == evRenumber
		reatt  = ev.kind == evReattach
		newTxn = uint32(next(&ev.rng))
	)
	switch {
	case g.rad != nil:
		sess, err := g.rad.StartSession(sub.user, ev.at)
		if err != nil {
			return fmt.Errorf("bng: shard %d key %#x: radius: %w", e.id, ev.key, err)
		}
		addr4 = netutil.U32(sess.Addr4)
		if sess.Prefix6.IsValid() {
			p6hi, _ = netutil.U128(sess.Prefix6.Addr())
			p6len = uint8(sess.Prefix6.Bits())
		}
	default:
		hw := hwOf(ev.key)
		if renum {
			// A forced v4 renumber releases before reacquiring; the
			// sticky server re-offers the same address (stable
			// business addressing), while v6 Reassign forces a fresh
			// delegation.
			if _, err := g.d4.Handle(dhcp4.NewMessage(dhcp4.Release, newTxn, hw)); err != nil {
				return fmt.Errorf("bng: shard %d key %#x: dhcp4 release: %w", e.id, ev.key, err)
			}
		}
		lease, err := g.d4.Acquire(hw, newTxn)
		if err != nil {
			return fmt.Errorf("bng: shard %d key %#x: dhcp4: %w", e.id, ev.key, err)
		}
		addr4 = netutil.U32(lease.Addr)
		if g.d6 != nil {
			var bind dhcp6.Binding
			if renum {
				bind, err = g.d6.Reassign(sub.duid, newTxn)
			} else {
				bind, err = g.d6.Acquire(sub.duid, newTxn)
			}
			if err != nil {
				return fmt.Errorf("bng: shard %d key %#x: dhcp6: %w", e.id, ev.key, err)
			}
			p6hi, _ = netutil.U128(bind.Prefix.Addr())
			p6len = uint8(bind.Prefix.Bits())
		}
	}
	old, had := b.Get(ev.key)
	s := stripe.Session{
		Key:     ev.key,
		Addr4:   addr4,
		Pfx6Hi:  p6hi,
		Pfx6Len: p6len,
		Start:   ev.at,
		Expiry:  ev.at + 2*g.renewSec,
		State:   stripe.StateActive,
	}
	if had {
		s.Start = old.Start
		s.Gen = old.Gen
		s.Renews = old.Renews
		if old.Addr4 != addr4 {
			s.Gen++
			e.stats.V4Changes++
		}
		if old.Pfx6Hi != p6hi || old.Pfx6Len != p6len {
			if old.Addr4 == addr4 {
				s.Gen++
			}
			e.stats.V6Changes++
		}
	}
	b.Put(s)
	switch {
	case renum:
		e.stats.Renumbers++
	case reatt:
		e.stats.Reattach++
	default:
		e.stats.Attaches++
	}
	return nil
}

// release tears the subscriber's server-side state down and deletes its
// session record.
func (e *shardEngine) release(b stripe.Borrowed, ev *event, sub *subState, g *groupSrv) {
	switch {
	case g.rad != nil:
		g.rad.StopSession(sub.user)
	default:
		hw := hwOf(ev.key)
		g.d4.Handle(dhcp4.NewMessage(dhcp4.Release, uint32(next(&ev.rng)), hw))
		if g.d6 != nil {
			g.d6.ReleaseBinding(sub.duid)
		}
	}
	b.Delete(ev.key)
	e.stats.Flaps++
}

// scheduleNext draws the subscriber's next action — routine renewal at
// T1 (lease/2), exponential renumbering, or an exponential flap — and
// pushes whichever comes first. Ties resolve renew < renumber < flap.
func (e *shardEngine) scheduleNext(ev *event, g *groupSrv) {
	in := g.renewSec
	kind := evRenew
	if rn := expSeconds(&ev.rng, g.renumberSec); rn < in {
		in, kind = rn, evRenumber
	}
	if fl := expSeconds(&ev.rng, g.flapSec); fl < in {
		in, kind = fl, evFlap
	}
	e.events.push(event{at: ev.at + in, key: ev.key, idx: ev.idx, kind: kind, rng: ev.rng})
}
