package bng

import (
	"errors"
	"fmt"
	"net/url"
	"strconv"

	"dynamips/internal/sketch"
)

// Sketch schema parameters for the assignment plane. Mirrors the CDN
// stream pipeline's error knobs (rank error ≤ alpha·n, heavy-hitter
// error ≤ N/k, cardinality RSE ≈ 0.8%) with an independently versioned
// schema.
const (
	sketchAlpha    = 0.01
	sketchTopK     = 1024
	sketchCardP    = 14
	sketchCardSeed = 0x64796E616D495073
)

// Canonical sketch names in the daemon's analysis set.
const (
	SkChurn24    = "churn24"   // top-k: /24s by v4 address changes
	SkChurn64    = "churn64"   // top-k: /64 groups by delegated-prefix changes
	SkDurSession = "dur_hours" // quantile: completed session durations (hours)
	SkPfx24      = "pfx24"     // cardinality: distinct /24s ever assigned from
	SkPfx64      = "pfx64"     // cardinality: distinct /64 prefix groups assigned
)

// newEngineSketch returns an empty sketch set with the assignment-plane
// schema. Every stripe's partial and the daemon's merged barrier state
// share this shape.
func newEngineSketch() *sketch.Set {
	s := sketch.NewSet()
	for _, it := range []struct {
		name string
		sk   sketch.Sketch
	}{
		{SkChurn24, sketch.NewTopK(sketchTopK)},
		{SkChurn64, sketch.NewTopK(sketchTopK)},
		{SkDurSession, sketch.NewQuantile(sketchAlpha)},
		{SkPfx24, sketch.NewCard(sketchCardP, sketchCardSeed)},
		{SkPfx64, sketch.NewCard(sketchCardP, sketchCardSeed)},
	} {
		if err := s.Put(it.name, it.sk); err != nil {
			panic(err)
		}
	}
	return s
}

// Engine fold hooks. Each stripe's engine is single-threaded within a
// round and owns its set exclusively, so folds need no locks; the
// daemon merges the partials in stripe order at the round barrier.

// skAssign records an assignment outcome: the pool cardinalities see
// every held address, and each family's change feeds its churn top-k.
func (e *shardEngine) skAssign(addr4 uint32, p6hi uint64, p6len uint8) {
	if addr4 != 0 {
		e.sk.Card(SkPfx24).Add(uint64(addr4 >> 8))
	}
	if p6len != 0 {
		e.sk.Card(SkPfx64).Add(p6hi)
	}
}

// skV4Change records one v4 address change against the /24 the
// subscriber left.
func (e *shardEngine) skV4Change(oldAddr4 uint32) {
	if oldAddr4 != 0 {
		e.sk.TopK(SkChurn24).Add(uint64(oldAddr4>>8), 1)
	}
}

// skV6Change records one delegated-prefix change against the old /64
// group.
func (e *shardEngine) skV6Change(oldP6Hi uint64, oldP6Len uint8) {
	if oldP6Len != 0 {
		e.sk.TopK(SkChurn64).Add(oldP6Hi, 1)
	}
}

// skSessionEnd records a completed session's duration in hours when the
// session tears down (flap release or operator disconnect).
func (e *shardEngine) skSessionEnd(startSec, endSec int64) {
	e.sk.Quantile(SkDurSession).Add(float64(endSec-startSec) / 3600)
}

// QuantilePoint is one (probability, value) sample of a duration CDF.
type QuantilePoint struct {
	P float64 `json:"p"`
	V float64 `json:"v"`
}

// TopEntry is one heavy hitter in a /sketch summary.
type TopEntry struct {
	Key   uint64 `json:"key"`
	Count uint64 `json:"count"`
}

// SketchSummary is one sketch's canonical /sketch rendering: exactly
// the fields its kind defines, in a deterministic order.
type SketchSummary struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "quantile" | "topk" | "card"
	// Quantile fields.
	Count     uint64          `json:"count,omitempty"`
	Quantiles []QuantilePoint `json:"quantiles,omitempty"`
	// Top-k fields: estimates undercount by at most Slack ≤ N/k.
	N     uint64     `json:"n,omitempty"`
	Slack uint64     `json:"slack,omitempty"`
	Top   []TopEntry `json:"top,omitempty"`
	// Cardinality fields.
	Estimate float64 `json:"estimate,omitempty"`
	RSE      float64 `json:"rse,omitempty"`
}

// SketchView is the full /sketch payload: every sketch summarized at
// the daemon's current round boundary. Like /stats it is a pure
// function of engine state, so two daemons at the same virtual hour
// render byte-identical views at any worker count.
type SketchView struct {
	VirtualHours int64           `json:"virtual_hours"`
	Sketches     []SketchSummary `json:"sketches"`
}

// summaryProbs is the fixed quantile grid the full view samples.
var summaryProbs = []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99}

// summaryTop is the number of heavy hitters the full view lists.
const summaryTop = 10

func buildSketchView(hours int64, s *sketch.Set) SketchView {
	v := SketchView{VirtualHours: hours}
	for _, name := range s.Names() {
		sum := SketchSummary{Name: name}
		switch s.KindOf(name) {
		case sketch.KindQuantile:
			q := s.Quantile(name)
			sum.Kind = "quantile"
			sum.Count = q.Count()
			if sum.Count > 0 {
				for _, p := range summaryProbs {
					sum.Quantiles = append(sum.Quantiles, QuantilePoint{P: p, V: q.Query(p)})
				}
			}
		case sketch.KindTopK:
			tk := s.TopK(name)
			sum.Kind = "topk"
			sum.N = tk.N()
			sum.Slack = tk.Slack()
			for _, e := range tk.Top(summaryTop) {
				sum.Top = append(sum.Top, TopEntry{Key: e.Key, Count: e.Count})
			}
		case sketch.KindCard:
			c := s.Card(name)
			sum.Kind = "card"
			sum.Estimate = c.Estimate()
			sum.RSE = c.RSE()
		}
		v.Sketches = append(v.Sketches, sum)
	}
	return v
}

// SketchQuery is a parsed /sketch request.
type SketchQuery struct {
	// Op selects the response: "" (full summary view), "quantile",
	// "topk", "card", or "binary" (the canonical encoded set).
	Op   string
	Name string
	P    float64 // quantile probability
	K    int     // topk entry count
}

// Query-parse errors. The parser is a pure function of the raw query
// string so it can be fuzzed without a daemon.
var (
	ErrSketchQueryParam = errors.New("bng: unknown or malformed sketch query parameter")
	ErrSketchQueryOp    = errors.New("bng: unknown sketch query op")
	ErrSketchQueryName  = errors.New("bng: sketch query needs a name")
	ErrSketchQueryRange = errors.New("bng: sketch query value out of range")
)

// maxSketchTop bounds a topk query's entry count.
const maxSketchTop = 4096

// ParseSketchQuery parses a /sketch raw query string. Empty input is
// the full-view query. It is strict: unknown keys, repeated keys, and
// out-of-range values are rejected rather than ignored, so a typo never
// silently falls back to the full view.
func ParseSketchQuery(rawQuery string) (SketchQuery, error) {
	q := SketchQuery{P: 0.5, K: summaryTop}
	if rawQuery == "" {
		return q, nil
	}
	vals, err := url.ParseQuery(rawQuery)
	if err != nil {
		return SketchQuery{}, ErrSketchQueryParam
	}
	var hasP, hasK, hasFormat bool
	for key, vs := range vals {
		if len(vs) != 1 {
			return SketchQuery{}, ErrSketchQueryParam
		}
		v := vs[0]
		switch key {
		case "op":
			q.Op = v
		case "name":
			q.Name = v
		case "p":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return SketchQuery{}, ErrSketchQueryParam
			}
			if !(f >= 0 && f <= 1) { // rejects NaN too
				return SketchQuery{}, ErrSketchQueryRange
			}
			q.P = f
			hasP = true
		case "k":
			n, err := strconv.Atoi(v)
			if err != nil {
				return SketchQuery{}, ErrSketchQueryParam
			}
			if n < 1 || n > maxSketchTop {
				return SketchQuery{}, ErrSketchQueryRange
			}
			q.K = n
			hasK = true
		case "format":
			if v != "binary" {
				return SketchQuery{}, ErrSketchQueryParam
			}
			hasFormat = true
		default:
			return SketchQuery{}, ErrSketchQueryParam
		}
	}
	if hasFormat {
		if q.Op != "" || q.Name != "" || hasP || hasK {
			return SketchQuery{}, ErrSketchQueryParam
		}
		q.Op = "binary"
		return q, nil
	}
	switch q.Op {
	case "":
		if q.Name != "" || hasP || hasK {
			return SketchQuery{}, ErrSketchQueryParam
		}
	case "quantile":
		if q.Name == "" {
			return SketchQuery{}, ErrSketchQueryName
		}
		if hasK {
			return SketchQuery{}, ErrSketchQueryParam
		}
	case "topk":
		if q.Name == "" {
			return SketchQuery{}, ErrSketchQueryName
		}
		if hasP {
			return SketchQuery{}, ErrSketchQueryParam
		}
	case "card":
		if q.Name == "" {
			return SketchQuery{}, ErrSketchQueryName
		}
		if hasP || hasK {
			return SketchQuery{}, ErrSketchQueryParam
		}
	default:
		return SketchQuery{}, ErrSketchQueryOp
	}
	return q, nil
}

// QuantileAnswer is the op=quantile payload.
type QuantileAnswer struct {
	VirtualHours int64   `json:"virtual_hours"`
	Name         string  `json:"name"`
	Count        uint64  `json:"count"`
	P            float64 `json:"p"`
	Value        float64 `json:"value"`
}

// TopKAnswer is the op=topk payload.
type TopKAnswer struct {
	VirtualHours int64      `json:"virtual_hours"`
	Name         string     `json:"name"`
	N            uint64     `json:"n"`
	Slack        uint64     `json:"slack"`
	Top          []TopEntry `json:"top"`
}

// CardAnswer is the op=card payload.
type CardAnswer struct {
	VirtualHours int64   `json:"virtual_hours"`
	Name         string  `json:"name"`
	Estimate     float64 `json:"estimate"`
	RSE          float64 `json:"rse"`
}

// ErrSketchUnknown reports a query against a name the schema does not
// hold, or one whose kind does not match the op.
var ErrSketchUnknown = errors.New("bng: no such sketch for that op")

// QuerySketch answers a parsed query against the cached round-boundary
// sketch state. Op "binary" is served by SketchBinary instead.
func (d *Daemon) QuerySketch(q SketchQuery) (any, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, hours := d.sketchSet, d.hours
	switch q.Op {
	case "quantile":
		if s.KindOf(q.Name) != sketch.KindQuantile {
			return nil, ErrSketchUnknown
		}
		qu := s.Quantile(q.Name)
		return QuantileAnswer{VirtualHours: hours, Name: q.Name,
			Count: qu.Count(), P: q.P, Value: qu.Query(q.P)}, nil
	case "topk":
		if s.KindOf(q.Name) != sketch.KindTopK {
			return nil, ErrSketchUnknown
		}
		tk := s.TopK(q.Name)
		ans := TopKAnswer{VirtualHours: hours, Name: q.Name, N: tk.N(), Slack: tk.Slack()}
		for _, e := range tk.Top(q.K) {
			ans.Top = append(ans.Top, TopEntry{Key: e.Key, Count: e.Count})
		}
		return ans, nil
	case "card":
		if s.KindOf(q.Name) != sketch.KindCard {
			return nil, ErrSketchUnknown
		}
		c := s.Card(q.Name)
		return CardAnswer{VirtualHours: hours, Name: q.Name,
			Estimate: c.Estimate(), RSE: c.RSE()}, nil
	default:
		return nil, fmt.Errorf("bng: QuerySketch cannot answer op %q", q.Op)
	}
}

// Sketch returns the cached full sketch view.
func (d *Daemon) Sketch() SketchView {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.sketchView
}

// SketchBinary returns the canonical CRC-framed encoding of the merged
// sketch set — the same codec the stream pipeline journals, so a
// watcher can decode, merge, and re-serve daemon sketches offline.
func (d *Daemon) SketchBinary() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]byte(nil), d.sketchBin...)
}

// mergeEngineSketches folds every stripe's partial, in stripe-index
// order, into one fresh set. Called at the round barrier (engines
// quiescent); the result is worker-count independent because the
// stripe partition and each stripe's event order are.
func (d *Daemon) mergeEngineSketches() *sketch.Set {
	acc := newEngineSketch()
	for _, e := range d.engines {
		if err := acc.Merge(e.sk); err != nil {
			// Engines share one schema by construction.
			panic(err)
		}
	}
	return acc
}
