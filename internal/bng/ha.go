package bng

import (
	"bytes"
	"fmt"

	"dynamips/internal/bng/stripe"
)

// Pair couples an active daemon with a warm standby built from the same
// Config. Both replay the identical deterministic history — scenario
// included — so the standby's state is the active's state by
// construction; Sync proves it after every round by streaming the
// active's session table through the 48-byte wire codec and comparing
// record-for-record at the standby (the state-sync channel doubling as
// split-brain detection). Promote then makes a takeover a pure role
// swap: the survivor already holds the right state, lease-preserving or
// renumbered per the scenario's policy.
type Pair struct {
	active  *Daemon
	standby *Daemon
	syncs   int64
}

// NewPair builds the active/standby pair. The standby never owns the
// checkpoint watermark or the observer: those belong to whichever
// process is active.
func NewPair(cfg Config, opt Options) (*Pair, error) {
	activeOpt := opt
	activeOpt.Role = "active"
	a, err := New(cfg, activeOpt)
	if err != nil {
		return nil, err
	}
	standbyOpt := opt
	standbyOpt.Role = "standby"
	standbyOpt.CheckpointDir = ""
	standbyOpt.Obs = nil
	s, err := New(cfg, standbyOpt)
	if err != nil {
		return nil, err
	}
	return &Pair{active: a, standby: s}, nil
}

// Active returns the current active daemon.
func (p *Pair) Active() *Daemon { return p.active }

// Standby returns the current standby daemon.
func (p *Pair) Standby() *Daemon { return p.standby }

// Syncs returns how many state syncs have been verified.
func (p *Pair) Syncs() int64 { return p.syncs }

// Churn advances both daemons in lockstep rounds to the given virtual
// hour, verifying the standby against the active's encoded snapshot at
// every round boundary.
func (p *Pair) Churn(toHours int64) error {
	for {
		h := p.active.Hours()
		if h >= toHours {
			return nil
		}
		round := h + p.active.opt.RoundHours
		if round > toHours {
			round = toHours
		}
		if err := p.active.Churn(round); err != nil {
			return err
		}
		if err := p.standby.Churn(round); err != nil {
			return err
		}
		if err := p.Sync(); err != nil {
			return err
		}
	}
}

// Sync streams the active's session table through the wire codec and
// verifies the standby holds the identical state. A mismatch is a split
// brain: the pair's replay contract is broken and a takeover would
// corrupt assignments.
func (p *Pair) Sync() error {
	var buf bytes.Buffer
	if err := p.active.WriteSnapshot(&buf); err != nil {
		return fmt.Errorf("bng: ha sync encode: %w", err)
	}
	recs, err := stripe.DecodeSnapshot(&buf)
	if err != nil {
		return fmt.Errorf("bng: ha sync decode: %w", err)
	}
	mine := p.standby.table.SnapshotSorted()
	if len(recs) != len(mine) {
		return fmt.Errorf("bng: ha split brain: active has %d sessions, standby %d", len(recs), len(mine))
	}
	for i := range recs {
		if recs[i] != mine[i] {
			return fmt.Errorf("bng: ha split brain at key %#x: active %+v, standby %+v", recs[i].Key, recs[i], mine[i])
		}
	}
	p.syncs++
	return nil
}

// Promote swaps roles after the active is lost. The promoted daemon's
// replayed state already reflects the scenario's recovery policy —
// preserved leases or a deterministic mass renumbering — so the swap
// itself touches no session state.
func (p *Pair) Promote() *Daemon {
	p.active, p.standby = p.standby, p.active
	p.active.SetRole("active")
	p.standby.SetRole("standby")
	return p.active
}
