package bng

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"dynamips/internal/sketch"
)

func sketchJSONBytes(t *testing.T, d *Daemon) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteSketchJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSketchWorkerInvariance: the merged sketch set — binary encoding
// and canonical JSON view — must be byte-identical at any worker count,
// including under an operator-action scenario that exercises the CoA
// and disconnect fold paths.
func TestSketchWorkerInvariance(t *testing.T) {
	sc := &Scenario{CoAMeanHours: 12, DisconnectMeanHours: 48}
	cfg := scenarioConfig(42, sc)
	ref := churned(t, cfg, Options{Workers: 1, RoundHours: 5}, 24)
	wantBin := ref.SketchBinary()
	wantJSON := sketchJSONBytes(t, ref)
	if len(wantBin) == 0 || len(wantJSON) == 0 {
		t.Fatal("reference daemon produced empty sketch state")
	}
	for _, workers := range []int{2, 4, 16} {
		d := churned(t, cfg, Options{Workers: workers, RoundHours: 5}, 24)
		if !bytes.Equal(d.SketchBinary(), wantBin) {
			t.Errorf("workers=%d: sketch binary differs from workers=1", workers)
		}
		if !bytes.Equal(sketchJSONBytes(t, d), wantJSON) {
			t.Errorf("workers=%d: sketch JSON differs from workers=1", workers)
		}
	}
}

// TestSketchResumeIdentity: a daemon replayed from a checkpoint
// watermark rebuilds the exact sketch bytes of the uninterrupted run.
func TestSketchResumeIdentity(t *testing.T) {
	cfg := testConfig(77)
	dir := t.TempDir()
	first := churned(t, cfg, Options{Workers: 4, RoundHours: 2, CheckpointDir: dir}, 8)
	want := first.SketchBinary()
	second, err := New(cfg, Options{Workers: 2, RoundHours: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if h, err := second.Resume(); err != nil || h != 8 {
		t.Fatalf("Resume() = %d, %v; want 8, nil", h, err)
	}
	if !bytes.Equal(second.SketchBinary(), want) {
		t.Error("resumed daemon's sketch bytes differ from the uninterrupted run")
	}
}

// TestSketchMatchesEngineCounters cross-checks the sketches against the
// exact event counters the engines keep independently: every counted
// address change is one churn fold, every teardown is one duration
// sample, and the pool cardinalities agree with the live table.
func TestSketchMatchesEngineCounters(t *testing.T) {
	sc := &Scenario{CoAMeanHours: 12, DisconnectMeanHours: 48}
	d := churned(t, scenarioConfig(7, sc), Options{Workers: 4, RoundHours: 6}, 48)
	v := d.Stats()
	s, err := sketch.DecodeSet(d.SketchBinary())
	if err != nil {
		t.Fatal(err)
	}
	if n := s.TopK(SkChurn24).N(); n != v.Events.V4Changes {
		t.Errorf("churn24 N = %d, want V4Changes %d", n, v.Events.V4Changes)
	}
	if n := s.TopK(SkChurn64).N(); n != v.Events.V6Changes {
		t.Errorf("churn64 N = %d, want V6Changes %d", n, v.Events.V6Changes)
	}
	q := s.Quantile(SkDurSession)
	if want := v.Events.Flaps + v.Events.Disconnects; q.Count() != want {
		t.Errorf("dur_hours count = %d, want Flaps+Disconnects %d", q.Count(), want)
	}
	if q.Count() == 0 {
		t.Fatal("no completed sessions after 48h of churn")
	}
	if med := q.Query(0.5); med <= 0 {
		t.Errorf("median session duration %.3fh, want > 0", med)
	}
	// The pool cardinalities count every /24 (and /64 group) ever
	// assigned from, so the live table's distinct sets lower-bound them.
	live24 := map[uint64]bool{}
	live64 := map[uint64]bool{}
	for _, rec := range d.Table().SnapshotSorted() {
		live24[uint64(rec.Addr4>>8)] = true
		if rec.Pfx6Len != 0 {
			live64[rec.Pfx6Hi] = true
		}
	}
	c24 := s.Card(SkPfx24)
	if min := float64(len(live24)) * (1 - 4*c24.RSE()); c24.Estimate() < min {
		t.Errorf("pfx24 estimate %.0f below live floor %.0f", c24.Estimate(), min)
	}
	c64 := s.Card(SkPfx64)
	if min := float64(len(live64)) * (1 - 4*c64.RSE()); c64.Estimate() < min {
		t.Errorf("pfx64 estimate %.0f below live floor %.0f", c64.Estimate(), min)
	}
}

// TestSketchEndpoint drives the /sketch route through real HTTP: full
// view, per-op answers, the binary form, and the error statuses.
func TestSketchEndpoint(t *testing.T) {
	d := churned(t, testConfig(13), Options{Workers: 4, RoundHours: 6}, 24)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	c := NewClient(srv.URL, nil).WithRetry(0, 0)

	view, err := c.Sketch()
	if err != nil {
		t.Fatal(err)
	}
	if view.VirtualHours != 24 || len(view.Sketches) != 5 {
		t.Fatalf("full view: hours %d sketches %d, want 24 and 5", view.VirtualHours, len(view.Sketches))
	}
	qa, err := c.SketchQuantile(SkDurSession, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if qa.Count == 0 || qa.P != 0.9 {
		t.Errorf("quantile answer %+v, want count > 0 and p=0.9", qa)
	}
	ta, err := c.SketchTopK(SkChurn24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Top) == 0 || len(ta.Top) > 5 || ta.N != d.Stats().Events.V4Changes {
		t.Errorf("topk answer %+v, want 1..5 entries and N=%d", ta, d.Stats().Events.V4Changes)
	}
	ca, err := c.SketchCard(SkPfx64)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Estimate <= 0 || ca.RSE <= 0 {
		t.Errorf("card answer %+v, want positive estimate and RSE", ca)
	}
	set, err := c.SketchSet()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(set.Encode(), d.SketchBinary()) {
		t.Error("binary round-trip re-encodes differently")
	}
	// The full-view body must be the daemon's cached canonical JSON.
	resp, err := http.Get(srv.URL + "/sketch")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(body, sketchJSONBytes(t, d)) {
		t.Error("/sketch body differs from cached canonical JSON")
	}
	for _, tc := range []struct {
		query string
		code  int
	}{
		{"?op=bogus", http.StatusBadRequest},
		{"?op=quantile", http.StatusBadRequest},
		{"?op=quantile&name=" + SkDurSession + "&p=2", http.StatusBadRequest},
		{"?op=quantile&name=" + SkDurSession + "&k=3", http.StatusBadRequest},
		{"?format=binary&op=card&name=" + SkPfx24, http.StatusBadRequest},
		{"?junk=1", http.StatusBadRequest},
		{"?op=card&name=nope", http.StatusNotFound},
		{"?op=topk&name=" + SkDurSession, http.StatusNotFound}, // kind mismatch
	} {
		resp, err := http.Get(srv.URL + "/sketch" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("GET /sketch%s: status %d, want %d", tc.query, resp.StatusCode, tc.code)
		}
	}
	if resp, err := http.Post(srv.URL+"/sketch", "text/plain", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /sketch: status %d, want 405", resp.StatusCode)
		}
	}
}

// TestSketchViewAdvances: querying at successive virtual hours sees
// monotone event mass — the live-query property the watch command
// polls for.
func TestSketchViewAdvances(t *testing.T) {
	d, err := New(testConfig(5), Options{Workers: 4, RoundHours: 4})
	if err != nil {
		t.Fatal(err)
	}
	var lastN uint64
	for _, h := range []int64{8, 24, 72} {
		if err := d.Churn(h); err != nil {
			t.Fatal(err)
		}
		s, err := sketch.DecodeSet(d.SketchBinary())
		if err != nil {
			t.Fatal(err)
		}
		n := s.TopK(SkChurn24).N() + s.Quantile(SkDurSession).Count()
		if n <= lastN {
			t.Fatalf("hour %d: event mass %d did not grow past %d", h, n, lastN)
		}
		lastN = n
		if d.Sketch().VirtualHours != h {
			t.Fatalf("hour %d: view reports %d", h, d.Sketch().VirtualHours)
		}
	}
}

// TestParseSketchQuery pins the parser's accept/reject behavior.
func TestParseSketchQuery(t *testing.T) {
	for _, tc := range []struct {
		raw  string
		want SketchQuery
		ok   bool
	}{
		{"", SketchQuery{P: 0.5, K: summaryTop}, true},
		{"op=quantile&name=dur_hours", SketchQuery{Op: "quantile", Name: "dur_hours", P: 0.5, K: summaryTop}, true},
		{"op=quantile&name=dur_hours&p=0.99", SketchQuery{Op: "quantile", Name: "dur_hours", P: 0.99, K: summaryTop}, true},
		{"op=topk&name=churn24&k=50", SketchQuery{Op: "topk", Name: "churn24", P: 0.5, K: 50}, true},
		{"op=card&name=pfx64", SketchQuery{Op: "card", Name: "pfx64", P: 0.5, K: summaryTop}, true},
		{"format=binary", SketchQuery{Op: "binary", P: 0.5, K: summaryTop}, true},
		{"op=quantile", SketchQuery{}, false},          // missing name
		{"op=nope&name=x", SketchQuery{}, false},       // unknown op
		{"name=x", SketchQuery{}, false},               // name without op
		{"p=0.5", SketchQuery{}, false},                // param without op
		{"op=card&name=x&p=0.5", SketchQuery{}, false}, // p on card
		{"op=topk&name=x&p=0.5", SketchQuery{}, false}, // p on topk
		{"op=quantile&name=x&k=3", SketchQuery{}, false},
		{"op=quantile&name=x&p=1.5", SketchQuery{}, false},
		{"op=quantile&name=x&p=NaN", SketchQuery{}, false},
		{"op=topk&name=x&k=0", SketchQuery{}, false},
		{"op=topk&name=x&k=999999", SketchQuery{}, false},
		{"op=topk&name=x&k=2&k=3", SketchQuery{}, false}, // repeated key
		{"format=json", SketchQuery{}, false},
		{"format=binary&op=card&name=x", SketchQuery{}, false},
		{"bogus=1", SketchQuery{}, false},
		{"%zz", SketchQuery{}, false},
	} {
		got, err := ParseSketchQuery(tc.raw)
		if tc.ok {
			if err != nil {
				t.Errorf("%q: unexpected error %v", tc.raw, err)
			} else if got != tc.want {
				t.Errorf("%q: got %+v, want %+v", tc.raw, got, tc.want)
			}
		} else if err == nil {
			t.Errorf("%q: parsed %+v, want error", tc.raw, got)
		}
	}
}

// FuzzSketchQuery: the parser must never panic, must return the zero
// query with every error, and accepted queries must satisfy the
// invariants the handler relies on.
func FuzzSketchQuery(f *testing.F) {
	f.Add("")
	f.Add("op=quantile&name=dur_hours&p=0.5")
	f.Add("op=topk&name=churn24&k=10")
	f.Add("format=binary")
	f.Add("%zz&op=card")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := ParseSketchQuery(raw)
		again, err2 := ParseSketchQuery(raw)
		if q != again || (err == nil) != (err2 == nil) {
			t.Fatalf("%q: parse is not deterministic", raw)
		}
		if err != nil {
			if q != (SketchQuery{}) {
				t.Fatalf("%q: error with non-zero query %+v", raw, q)
			}
			return
		}
		switch q.Op {
		case "", "binary":
			if q.Name != "" {
				t.Fatalf("%q: op %q carries name %q", raw, q.Op, q.Name)
			}
		case "quantile", "topk", "card":
			if q.Name == "" {
				t.Fatalf("%q: op %q without name", raw, q.Op)
			}
		default:
			t.Fatalf("%q: unknown op %q accepted", raw, q.Op)
		}
		if !(q.P >= 0 && q.P <= 1) {
			t.Fatalf("%q: p %v out of range", raw, q.P)
		}
		if q.K < 1 || q.K > maxSketchTop {
			t.Fatalf("%q: k %d out of range", raw, q.K)
		}
	})
}

// marshalView guards the canonical JSON shape: encoding the cached view
// struct directly must match the cached bytes (modulo the trailing
// newline both carry).
func TestSketchViewJSONCanonical(t *testing.T) {
	d := churned(t, testConfig(3), Options{Workers: 2, RoundHours: 6}, 12)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d.Sketch()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), sketchJSONBytes(t, d)) {
		t.Error("re-encoded view differs from cached canonical JSON")
	}
}
