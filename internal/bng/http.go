package bng

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Pagination limits for /sessions.
const (
	DefaultPageLimit = 100
	MaxPageLimit     = 1000
)

// SessionsPage is the /sessions payload. NextOffset is nil on the last
// page. Offsets index the stable subscriber-slot space (every
// configured subscriber has a slot whether or not it is online), so a
// paginated walk under churn never skips or repeats a slot.
type SessionsPage struct {
	Total      int           `json:"total"`
	Offset     int           `json:"offset"`
	Limit      int           `json:"limit"`
	NextOffset *int          `json:"next_offset"`
	Sessions   []SessionView `json:"sessions"`
}

// PoolsPayload is the /pools payload.
type PoolsPayload struct {
	Pools []PoolStats `json:"pools"`
}

// Handler returns the read-only API: GET /stats (cached round-boundary
// view, canonical JSON), GET /pools, GET /sessions?offset=&limit=,
// GET /ha (failover posture), GET /snapshot (the binary session-table
// codec stream a standby syncs from), and GET /sketch (streaming
// summaries: ?op=quantile|topk|card&name=... or ?format=binary).
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", d.handleStats)
	mux.HandleFunc("/pools", d.handlePools)
	mux.HandleFunc("/sessions", d.handleSessions)
	mux.HandleFunc("/ha", d.handleHA)
	mux.HandleFunc("/snapshot", d.handleSnapshot)
	mux.HandleFunc("/sketch", d.handleSketch)
	return mux
}

// handleSketch serves the round-boundary streaming summaries: the full
// canonical view by default, a single quantile/topk/card answer under
// op=, or the CRC-framed binary set under format=binary.
func (d *Daemon) handleSketch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q, err := ParseSketchQuery(r.URL.RawQuery)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch q.Op {
	case "":
		w.Header().Set("Content-Type", "application/json")
		_ = d.WriteSketchJSON(w)
	case "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(d.SketchBinary())
	default:
		ans, err := d.QuerySketch(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(ans)
	}
}

// Connection timeouts for the API server. ReadTimeout caps the whole
// request read, WriteTimeout the response write — /snapshot streams a
// full session table, so it gets the largest budget — and IdleTimeout
// reaps keep-alive connections between generator pulls.
const (
	httpReadHeaderTimeout = 5 * time.Second
	httpReadTimeout       = 10 * time.Second
	httpWriteTimeout      = 60 * time.Second
	httpIdleTimeout       = 120 * time.Second
	// shutdownGrace bounds the graceful drain when the caller's context
	// has no deadline of its own.
	shutdownGrace = 5 * time.Second
)

// APIServer is the daemon's running northbound HTTP endpoint.
type APIServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address.
func (s *APIServer) Addr() string { return s.ln.Addr().String() }

// Shutdown drains in-flight requests, then closes whatever is left. The
// drain is always bounded: a caller context without a deadline gets
// shutdownGrace, so a wedged client can never block daemon exit.
func (s *APIServer) Shutdown(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, shutdownGrace)
		defer cancel()
	}
	err := s.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return s.srv.Close()
	}
	return err
}

// Serve starts the read-only API on addr. The listener goroutine lives
// for the daemon's lifetime and is drained by Shutdown; it only reads
// the stripe table (per-shard locks) and the cached stats view, never
// the engines.
func (d *Daemon) Serve(addr string) (*APIServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bng: api listener on %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           d.Handler(),
		ReadHeaderTimeout: httpReadHeaderTimeout,
		ReadTimeout:       httpReadTimeout,
		WriteTimeout:      httpWriteTimeout,
		IdleTimeout:       httpIdleTimeout,
	}
	//lint:ignore goroutines background API listener joined by APIServer.Shutdown; read-only view of the striped table, never touches the engines
	go srv.Serve(ln) //nolint:errcheck // Shutdown surfaces as ErrServerClosed here
	return &APIServer{srv: srv, ln: ln}, nil
}

func (d *Daemon) handleHA(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(d.HA())
}

func (d *Daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = d.WriteSnapshot(w)
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = d.WriteStats(w)
}

func (d *Daemon) handlePools(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	v := d.Stats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(PoolsPayload{Pools: v.Pools})
}

func (d *Daemon) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	offset := 0
	if s := q.Get("offset"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "bad offset", http.StatusBadRequest)
			return
		}
		offset = v
	}
	limit := DefaultPageLimit
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = v
	}
	if limit > MaxPageLimit {
		limit = MaxPageLimit
	}
	total := d.cumSubs[len(d.cumSubs)-1]
	page := SessionsPage{
		Total:    total,
		Offset:   offset,
		Limit:    limit,
		Sessions: d.Sessions(offset, limit),
	}
	if n := offset + len(page.Sessions); len(page.Sessions) > 0 && n < total {
		page.NextOffset = &n
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(page)
}
