package stripe

import (
	"bytes"
	"flag"
	"slices"
	"testing"

	"dynamips/internal/faultnet"
	"dynamips/internal/parallel"
)

var propWorkers = flag.Int("workers", 0, "if >0, run the stripe property test only at this worker count")

// op is one step of the seeded churn stream: attach (put a fresh
// session), renew (bump Renews+Expiry in place), or release (delete).
type op struct {
	key  uint64
	kind uint8 // 0 attach, 1 renew, 2 release
	arg  uint32
}

const (
	opAttach uint8 = iota
	opRenew
	opRelease
)

// genOps draws a deterministic op stream over a bounded key universe.
func genOps(seed uint64, n int, universe uint64) []op {
	rng := faultnet.NewStream(seed, 0)
	ops := make([]op, n)
	for i := range ops {
		ops[i] = op{
			key:  rng.Uint64() % universe,
			kind: uint8(rng.Uint64() % 3),
			arg:  uint32(rng.Uint64()),
		}
	}
	return ops
}

// applyOp mutates one key's state the same way regardless of the
// backing store, expressed against get/put/delete callbacks.
func applyOp(o op, at int64, get func(uint64) (Session, bool), put func(Session), del func(uint64) bool) {
	switch o.kind {
	case opAttach:
		put(Session{
			Key:    o.key,
			Addr4:  o.arg,
			Start:  at,
			Expiry: at + 3600,
			State:  StateActive,
		})
	case opRenew:
		if s, ok := get(o.key); ok {
			s.Renews++
			s.Expiry = at + 3600
			put(s)
		}
	case opRelease:
		del(o.key)
	}
}

// oracleState applies the full op stream, in order, to one plain map:
// the naive single-threaded reference the striped table must match.
func oracleState(ops []op) []Session {
	m := make(map[uint64]Session)
	for i, o := range ops {
		applyOp(o, int64(i),
			func(k uint64) (Session, bool) { s, ok := m[k]; return s, ok },
			func(s Session) { m[s.Key] = s },
			func(k uint64) bool { _, ok := m[k]; delete(m, k); return ok },
		)
	}
	out := make([]Session, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	slices.SortFunc(out, compareSession)
	return out
}

// stripedState partitions the op stream by owning shard (preserving
// each shard's relative op order), applies shards concurrently with
// the given worker count, and snapshots.
func stripedState(t *testing.T, ops []op, shardBits, workers int) []Session {
	t.Helper()
	tab, err := New(shardBits)
	if err != nil {
		t.Fatal(err)
	}
	type idxOp struct {
		op op
		at int64
	}
	perShard := make([][]idxOp, tab.Shards())
	for i, o := range ops {
		sh := tab.ShardOf(o.key)
		perShard[sh] = append(perShard[sh], idxOp{op: o, at: int64(i)})
	}
	_, err = parallel.MapErr(tab.Shards(), workers, func(sh int) (struct{}, error) {
		b := tab.Borrow(sh)
		defer b.Release()
		for _, io := range perShard[sh] {
			applyOp(io.op, io.at, b.Get, b.Put, b.Delete)
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab.SnapshotSorted()
}

// TestStripedTableMatchesOracle is the ISSUE 8 property test: the
// lock-striped table, driven concurrently at -workers ∈ {1,4,16}, must
// produce a byte-identical snapshot to the naive single-map oracle fed
// the same seeded attach/renew/release stream. Ops on different keys
// commute and ops on one key stay shard-ordered, so any divergence
// means the striping itself (shard routing, borrow discipline, or
// snapshot canonicalization) is broken.
func TestStripedTableMatchesOracle(t *testing.T) {
	workerCounts := []int{1, 4, 16}
	if *propWorkers > 0 {
		workerCounts = []int{*propWorkers}
	}
	seeds := []uint64{1, 42, 0xD1CE}
	for _, seed := range seeds {
		ops := genOps(seed, 20000, 4096)
		want := oracleState(ops)
		var wantBuf bytes.Buffer
		if err := EncodeSnapshot(&wantBuf, want); err != nil {
			t.Fatal(err)
		}
		for _, shardBits := range []int{0, 4, 8} {
			for _, workers := range workerCounts {
				got := stripedState(t, ops, shardBits, workers)
				var gotBuf bytes.Buffer
				if err := EncodeSnapshot(&gotBuf, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
					t.Errorf("seed=%#x shardBits=%d workers=%d: striped snapshot differs from oracle (%d vs %d records)",
						seed, shardBits, workers, len(got), len(want))
				}
			}
		}
	}
}

// TestStripedTableConcurrentMixed hammers the locked Put/Get/Delete
// API (not Borrow) from many goroutines and then checks the table
// matches an oracle that saw the same per-key final op. Per-key op
// streams are independent here, so the final state is deterministic
// even though goroutines interleave freely — this is the -race foil
// for the shard mutexes.
func TestStripedTableConcurrentMixed(t *testing.T) {
	tab, err := New(6)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 2048
	_, err = parallel.MapErr(keys, 16, func(k int) (struct{}, error) {
		rng := faultnet.NewStream(99, uint64(k))
		key := uint64(k)
		steps := 8 + int(rng.Uint64()%8)
		for i := 0; i < steps; i++ {
			applyOp(op{key: key, kind: uint8(rng.Uint64() % 3), arg: uint32(rng.Uint64())},
				int64(i), tab.Get, tab.Put, tab.Delete)
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: same per-key streams applied sequentially.
	m := make(map[uint64]Session)
	for k := 0; k < keys; k++ {
		rng := faultnet.NewStream(99, uint64(k))
		key := uint64(k)
		steps := 8 + int(rng.Uint64()%8)
		for i := 0; i < steps; i++ {
			applyOp(op{key: key, kind: uint8(rng.Uint64() % 3), arg: uint32(rng.Uint64())},
				int64(i),
				func(kk uint64) (Session, bool) { s, ok := m[kk]; return s, ok },
				func(s Session) { m[s.Key] = s },
				func(kk uint64) bool { _, ok := m[kk]; delete(m, kk); return ok },
			)
		}
	}
	if tab.Len() != len(m) {
		t.Fatalf("table has %d sessions, oracle has %d", tab.Len(), len(m))
	}
	for _, s := range tab.SnapshotSorted() {
		if want, ok := m[s.Key]; !ok || want != s {
			t.Fatalf("key %d: table %+v, oracle %+v (present=%v)", s.Key, s, want, ok)
		}
	}
}
