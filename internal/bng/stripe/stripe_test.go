package stripe

import (
	"bytes"
	"errors"
	"testing"
)

func TestNewRejectsBadShardBits(t *testing.T) {
	for _, bits := range []int{-1, MaxShardBits + 1} {
		if _, err := New(bits); !errors.Is(err, ErrShardBits) {
			t.Errorf("New(%d): got %v, want ErrShardBits", bits, err)
		}
	}
}

func TestShardOfSingleShard(t *testing.T) {
	tab, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", tab.Shards())
	}
	for _, k := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		if got := tab.ShardOf(k); got != 0 {
			t.Errorf("ShardOf(%d) = %d, want 0", k, got)
		}
	}
}

func TestShardOfCoversAllShards(t *testing.T) {
	tab, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for k := uint64(0); k < 4096; k++ {
		i := tab.ShardOf(k)
		if i < 0 || i >= tab.Shards() {
			t.Fatalf("ShardOf(%d) = %d out of range", k, i)
		}
		seen[i] = true
	}
	if len(seen) != tab.Shards() {
		t.Errorf("dense keys hit %d/%d shards", len(seen), tab.Shards())
	}
}

func TestPutGetDeleteLen(t *testing.T) {
	tab, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	s := Session{Key: 42, Addr4: 0x0a000001, State: StateActive, Expiry: 3600}
	tab.Put(s)
	got, ok := tab.Get(42)
	if !ok || got != s {
		t.Fatalf("Get(42) = %+v, %v; want %+v, true", got, ok, s)
	}
	if _, ok := tab.Get(43); ok {
		t.Error("Get(43) found a session that was never stored")
	}
	if tab.Len() != 1 {
		t.Errorf("Len() = %d, want 1", tab.Len())
	}
	if !tab.Delete(42) {
		t.Error("Delete(42) = false, want true")
	}
	if tab.Delete(42) {
		t.Error("second Delete(42) = true, want false")
	}
	if tab.Len() != 0 {
		t.Errorf("Len() after delete = %d, want 0", tab.Len())
	}
}

func TestBorrowOps(t *testing.T) {
	tab, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(7)
	sh := tab.ShardOf(key)
	b := tab.Borrow(sh)
	b.Put(Session{Key: key, State: StateActive})
	if got, ok := b.Get(key); !ok || got.Key != key {
		t.Fatalf("Borrowed.Get = %+v, %v", got, ok)
	}
	if b.Len() != 1 {
		t.Errorf("Borrowed.Len = %d, want 1", b.Len())
	}
	if !b.Delete(key) {
		t.Error("Borrowed.Delete = false, want true")
	}
	if b.Delete(key) {
		t.Error("second Borrowed.Delete = true, want false")
	}
	b.Release()
	// Table must be usable again after release.
	tab.Put(Session{Key: key, State: StateActive})
	if tab.Len() != 1 {
		t.Errorf("Len after release = %d, want 1", tab.Len())
	}
}

func TestSnapshotSortedOrder(t *testing.T) {
	tab, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	// Insert in a scrambled order; expect key-ascending output.
	keys := []uint64{900, 3, 1 << 33, 77, 0, 12, 1<<32 + 5}
	for _, k := range keys {
		tab.Put(Session{Key: k, State: StateActive})
	}
	snap := tab.SnapshotSorted()
	if len(snap) != len(keys) {
		t.Fatalf("snapshot has %d records, want %d", len(snap), len(keys))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Key >= snap[i].Key {
			t.Fatalf("snapshot not strictly ascending at %d: %d >= %d", i, snap[i-1].Key, snap[i].Key)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sessions := []Session{
		{Key: 1, Pfx6Hi: 0x20010db800000000, Start: 10, Expiry: 3610, Addr4: 0x0a000001, Gen: 2, Renews: 9, Pfx6Len: 56, State: StateActive},
		{Key: 1<<32 + 7, Start: -5, Expiry: 1 << 40, Addr4: 0xffffffff, State: StateActive},
		{},
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, sessions); err != nil {
		t.Fatal(err)
	}
	wantLen := 16 + len(sessions)*EncodedSessionSize + 4
	if buf.Len() != wantLen {
		t.Fatalf("encoded length %d, want %d", buf.Len(), wantLen)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sessions) {
		t.Fatalf("decoded %d records, want %d", len(got), len(sessions))
	}
	for i := range sessions {
		if got[i] != sessions[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], sessions[i])
		}
	}
}

func TestDecodeSnapshotErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, []Session{{Key: 1, State: StateActive}}); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	t.Run("empty", func(t *testing.T) {
		if _, err := DecodeSnapshot(bytes.NewReader(nil)); !errors.Is(err, ErrSnapshotTruncate) {
			t.Errorf("got %v, want ErrSnapshotTruncate", err)
		}
	})
	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[0] ^= 0xff
		if _, err := DecodeSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotMagic) {
			t.Errorf("got %v, want ErrSnapshotMagic", err)
		}
	})
	t.Run("truncated-record", func(t *testing.T) {
		if _, err := DecodeSnapshot(bytes.NewReader(enc[:20])); !errors.Is(err, ErrSnapshotTruncate) {
			t.Errorf("got %v, want ErrSnapshotTruncate", err)
		}
	})
	t.Run("missing-trailer", func(t *testing.T) {
		if _, err := DecodeSnapshot(bytes.NewReader(enc[:len(enc)-4])); !errors.Is(err, ErrSnapshotTruncate) {
			t.Errorf("got %v, want ErrSnapshotTruncate", err)
		}
	})
	t.Run("crc", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[20] ^= 0xff
		if _, err := DecodeSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCRC) {
			t.Errorf("got %v, want ErrSnapshotCRC", err)
		}
	})
	t.Run("absurd-count", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		for i := 8; i < 16; i++ {
			bad[i] = 0xff
		}
		if _, err := DecodeSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotTruncate) {
			t.Errorf("got %v, want ErrSnapshotTruncate", err)
		}
	})
}

func TestHashDistinguishesStates(t *testing.T) {
	a := []Session{{Key: 1, Addr4: 10, State: StateActive}}
	b := []Session{{Key: 1, Addr4: 11, State: StateActive}}
	if Hash(a) == Hash(b) {
		t.Error("Hash collision between distinct single-record states")
	}
	if Hash(a) != Hash(append([]Session(nil), a...)) {
		t.Error("Hash not deterministic for equal input")
	}
	if Hash(nil) == Hash(a) {
		t.Error("Hash(nil) equals Hash(one record)")
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity over a dense range (a true bijection can't
	// collide; a buggy finalizer would show collisions fast).
	seen := make(map[uint64]uint64, 1<<16)
	for k := uint64(0); k < 1<<16; k++ {
		h := Mix64(k)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %#x", prev, k, h)
		}
		seen[h] = k
	}
}
