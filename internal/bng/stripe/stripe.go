// Package stripe is the BNG daemon's lock-striped session store: a
// fixed-width session record keyed by a dense uint64 subscriber key,
// spread over 2^k independently locked shards. The stripe index is the
// top bits of a SplitMix64 finalizer over the key, so dense per-group
// key ranges scatter uniformly and no shard becomes a hot spot.
//
// The package sits on the daemon's per-event hot path (≥10⁶ virtual-time
// renewal events per second), so every function here is held to
// dynalint's zero-allocation rules: no fmt, no string conversions, no
// capturing closures, no interface boxing. Keys are plain integers —
// netip values are converted to their compact uint32//uint64 forms by
// the caller (internal/netutil keying) before they reach the table.
//
// Determinism contract: the table is a pure key-value store — it never
// allocates addresses, draws randomness, or reads clocks — so its state
// is exactly the set of records the caller wrote. SnapshotSorted orders
// records by key and EncodeSnapshot has one canonical byte encoding,
// making "byte-identical across -workers counts and across kill/resume"
// a property the daemon can assert with a single byte comparison.
package stripe

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"slices"
	"sync"
)

// Session is one subscriber's live assignment state, sized and laid out
// for the canonical 48-byte snapshot record.
type Session struct {
	// Key is the dense subscriber key: group index in the high 32 bits,
	// subscriber index within the group in the low 32.
	Key uint64
	// Pfx6Hi is the network component (high 64 bits) of the delegated
	// IPv6 prefix; 0 with Pfx6Len 0 means no delegation (v4-only).
	Pfx6Hi uint64
	// Start and Expiry are virtual-time seconds.
	Start  int64
	Expiry int64
	// Addr4 is the framed IPv4 address (netutil.U32 form); 0 = none.
	Addr4 uint32
	// Gen counts address changes: it bumps whenever a renumbering or a
	// flap re-attach changed the subscriber's v4 address or v6 prefix.
	Gen uint32
	// Renews counts in-place lease renewals since the last attach.
	Renews uint32
	// Pfx6Len is the delegated prefix length (0 = none).
	Pfx6Len uint8
	// State is the session state (StateActive; the zero value means
	// "not present" and is never stored).
	State uint8
}

// StateActive is the only stored session state: released sessions are
// deleted from the table.
const StateActive uint8 = 1

// EncodedSessionSize is the canonical record width.
const EncodedSessionSize = 48

// snapshotMagic heads every encoded snapshot.
const snapshotMagic = "BNGSNAP1"

// Snapshot framing errors.
var (
	ErrSnapshotMagic    = errors.New("stripe: bad snapshot magic")
	ErrSnapshotTruncate = errors.New("stripe: truncated snapshot")
	ErrSnapshotCRC      = errors.New("stripe: snapshot CRC mismatch")
)

// castagnoli is the CRC-32C table shared with the checkpoint layer's
// atomic writer.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Mix64 is the SplitMix64 finalizer: the shard-selection hash. It is a
// bijection over uint64, so distinct keys never collide before the
// shard-index truncation.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// shard is one stripe: a mutex and its slice of the keyspace.
type shard struct {
	mu sync.Mutex
	m  map[uint64]Session
	// pad keeps neighboring shard mutexes off one cache line under
	// heavy cross-shard churn.
	_ [40]byte
}

// Table is the lock-striped session store. Shard count is fixed at
// construction and independent of how many workers drive it, so worker
// fan-out never changes which shard owns a key.
type Table struct {
	shift  uint
	shards []shard
}

// MaxShardBits bounds the stripe width (2^14 shards).
const MaxShardBits = 14

// ErrShardBits rejects out-of-range stripe widths.
var ErrShardBits = errors.New("stripe: shard bits outside [0, 14]")

// New builds a table with 2^shardBits stripes.
func New(shardBits int) (*Table, error) {
	if shardBits < 0 || shardBits > MaxShardBits {
		return nil, ErrShardBits
	}
	t := &Table{
		shift:  64 - uint(shardBits),
		shards: make([]shard, 1<<uint(shardBits)),
	}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]Session)
	}
	return t, nil
}

// Shards returns the stripe count.
func (t *Table) Shards() int { return len(t.shards) }

// ShardOf returns the stripe index owning key.
func (t *Table) ShardOf(key uint64) int {
	if t.shift == 64 {
		return 0 // one shard; x>>64 is not a defined shift
	}
	return int(Mix64(key) >> t.shift)
}

// Put stores s under s.Key, locking its shard.
func (t *Table) Put(s Session) {
	sh := &t.shards[t.ShardOf(s.Key)]
	sh.mu.Lock()
	sh.m[s.Key] = s
	sh.mu.Unlock()
}

// Get returns the session stored under key, locking its shard.
func (t *Table) Get(key uint64) (Session, bool) {
	sh := &t.shards[t.ShardOf(key)]
	sh.mu.Lock()
	s, ok := sh.m[key]
	sh.mu.Unlock()
	return s, ok
}

// Delete removes key, locking its shard; it reports whether a session
// was present.
func (t *Table) Delete(key uint64) bool {
	sh := &t.shards[t.ShardOf(key)]
	sh.mu.Lock()
	_, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
	return ok
}

// Len returns the total session count across all shards.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Borrowed is exclusive single-goroutine access to one stripe: the
// daemon's churn loop borrows each shard for a whole round and mutates
// it lock-free, while readers on other shards proceed.
type Borrowed struct {
	sh *shard
}

// Borrow locks stripe i and returns direct access to it. The caller
// must Release it; only keys owned by stripe i may be touched.
func (t *Table) Borrow(i int) Borrowed {
	sh := &t.shards[i]
	sh.mu.Lock()
	//lint:ignore lockscope lock handoff by design: Borrow transfers the stripe lock to the caller, who must Release it
	return Borrowed{sh: sh}
}

// Release unlocks the borrowed stripe.
func (b Borrowed) Release() { b.sh.mu.Unlock() }

// Get reads a session from the borrowed stripe.
func (b Borrowed) Get(key uint64) (Session, bool) {
	s, ok := b.sh.m[key]
	return s, ok
}

// Put writes a session into the borrowed stripe.
func (b Borrowed) Put(s Session) { b.sh.m[s.Key] = s }

// Delete removes a session from the borrowed stripe, reporting whether
// it was present.
func (b Borrowed) Delete(key uint64) bool {
	_, ok := b.sh.m[key]
	if ok {
		delete(b.sh.m, key)
	}
	return ok
}

// Len returns the borrowed stripe's session count.
func (b Borrowed) Len() int { return len(b.sh.m) }

// compareSession orders records by key: the canonical snapshot order.
func compareSession(a, b Session) int {
	switch {
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	}
	return 0
}

// SnapshotSorted collects every session into a slice sorted by key —
// the canonical order group-then-subscriber, since keys are dense
// (group<<32 | index). Each shard is locked only while it is copied.
func (t *Table) SnapshotSorted() []Session {
	n := t.Len()
	out := make([]Session, 0, n)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, s := range sh.m {
			out = append(out, s)
		}
		sh.mu.Unlock()
	}
	slices.SortFunc(out, compareSession)
	return out
}

// AppendSession appends the canonical 48-byte encoding of s to dst.
func AppendSession(dst []byte, s Session) []byte {
	var b [EncodedSessionSize]byte
	binary.LittleEndian.PutUint64(b[0:], s.Key)
	binary.LittleEndian.PutUint64(b[8:], s.Pfx6Hi)
	binary.LittleEndian.PutUint64(b[16:], uint64(s.Start))
	binary.LittleEndian.PutUint64(b[24:], uint64(s.Expiry))
	binary.LittleEndian.PutUint32(b[32:], s.Addr4)
	binary.LittleEndian.PutUint32(b[36:], s.Gen)
	binary.LittleEndian.PutUint32(b[40:], s.Renews)
	b[44] = s.Pfx6Len
	b[45] = s.State
	// b[46:48] is zero padding.
	return append(dst, b[:]...)
}

// decodeSession decodes one 48-byte record.
func decodeSession(b []byte) Session {
	return Session{
		Key:     binary.LittleEndian.Uint64(b[0:]),
		Pfx6Hi:  binary.LittleEndian.Uint64(b[8:]),
		Start:   int64(binary.LittleEndian.Uint64(b[16:])),
		Expiry:  int64(binary.LittleEndian.Uint64(b[24:])),
		Addr4:   binary.LittleEndian.Uint32(b[32:]),
		Gen:     binary.LittleEndian.Uint32(b[36:]),
		Renews:  binary.LittleEndian.Uint32(b[40:]),
		Pfx6Len: b[44],
		State:   b[45],
	}
}

// EncodeSnapshot writes the canonical snapshot encoding: magic, record
// count, the records in the given order, and a CRC-32C trailer over
// everything before it. Callers pass SnapshotSorted output for the
// canonical byte stream.
func EncodeSnapshot(w io.Writer, sessions []Session) error {
	crc := crc32.New(castagnoli)
	mw := io.MultiWriter(w, crc)
	var hdr [16]byte
	copy(hdr[:8], snapshotMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(sessions)))
	if _, err := mw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, EncodedSessionSize)
	for i := range sessions {
		buf = AppendSession(buf[:0], sessions[i])
		if _, err := mw.Write(buf); err != nil {
			return err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// DecodeSnapshot reads an EncodeSnapshot stream back into its record
// slice, verifying framing and the CRC trailer.
func DecodeSnapshot(r io.Reader) ([]Session, error) {
	crc := crc32.New(castagnoli)
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, ErrSnapshotTruncate
	}
	if string(hdr[:8]) != snapshotMagic {
		return nil, ErrSnapshotMagic
	}
	crc.Write(hdr[:])
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n > 1<<40 {
		return nil, ErrSnapshotTruncate
	}
	out := make([]Session, 0, n)
	var rec [EncodedSessionSize]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, ErrSnapshotTruncate
		}
		crc.Write(rec[:])
		out = append(out, decodeSession(rec[:]))
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, ErrSnapshotTruncate
	}
	if binary.LittleEndian.Uint32(tail[:]) != crc.Sum32() {
		return nil, ErrSnapshotCRC
	}
	return out, nil
}

// Hash folds the canonical encoding of the given records into one
// FNV-1a/64 digest: the cheap equality check the daemon's /stats
// endpoint exposes as table_hash.
func Hash(sessions []Session) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	buf := make([]byte, 0, EncodedSessionSize)
	for i := range sessions {
		buf = AppendSession(buf[:0], sessions[i])
		for _, c := range buf {
			h ^= uint64(c)
			h *= prime64
		}
	}
	return h
}
