package bng

import (
	"bytes"
	"reflect"
	"testing"
)

// scenarioConfig is testConfig plus a scenario.
func scenarioConfig(seed uint64, sc *Scenario) Config {
	cfg := testConfig(seed)
	cfg.Scenario = sc
	return cfg
}

func TestScenarioParse(t *testing.T) {
	cases := []struct {
		spec string
		want Scenario
	}{
		{"failover-at=36:12,policy=renumber", Scenario{FailoverAtHours: []int64{12, 36}, Policy: PolicyRenumber}},
		{"failover-mean=24", Scenario{FailoverMeanHours: 24}},
		{"coa-mean=72,disconnect-mean=200", Scenario{CoAMeanHours: 72, DisconnectMeanHours: 200}},
		{"relay-hops=2,relay-drop=0.05", Scenario{RelayHops: 2, RelayDrop: 0.05}},
	}
	for _, c := range cases {
		sc, err := ParseScenario(c.spec)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", c.spec, err)
		}
		if sc == nil {
			t.Fatalf("ParseScenario(%q) = nil", c.spec)
		}
		if !reflect.DeepEqual(*sc, c.want) {
			t.Errorf("ParseScenario(%q) = %+v, want %+v", c.spec, *sc, c.want)
		}
		// String renders back to a spec that re-parses to the same value.
		if _, err := ParseScenario(sc.String()); err != nil {
			t.Errorf("re-parsing String() %q: %v", sc.String(), err)
		}
	}
	if sc, err := ParseScenario(""); err != nil || sc != nil {
		t.Errorf("ParseScenario(\"\") = %v, %v; want nil, nil", sc, err)
	}
	for _, bad := range []string{
		"nope",
		"frob=1",
		"failover-mean=-3",
		"failover-mean=24,failover-at=12",
		"policy=explode",
		"relay-hops=99",
		"relay-drop=0.5", // drop without hops
		"coa-mean=0",
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) succeeded, want error", bad)
		}
	}
}

// TestEmptyScenarioIdentity: an all-zero scenario consumes no draws, so
// its snapshots match a scenario-free config byte-for-byte.
func TestEmptyScenarioIdentity(t *testing.T) {
	plain := churned(t, testConfig(11), Options{Workers: 4, RoundHours: 6}, 24)
	empty := churned(t, scenarioConfig(11, &Scenario{}), Options{Workers: 4, RoundHours: 6}, 24)
	if !bytes.Equal(snapshotBytes(t, plain), snapshotBytes(t, empty)) {
		t.Error("empty scenario perturbed the snapshot")
	}
}

// TestFailoverPreserveIdentity is half the PR's acceptance property: a
// lease-preserving takeover leaves snapshots byte-identical to an
// uninterrupted run, at every worker count.
func TestFailoverPreserveIdentity(t *testing.T) {
	uninterrupted := churned(t, testConfig(23), Options{Workers: 4, RoundHours: 4}, 12)
	want := snapshotBytes(t, uninterrupted)
	sc := &Scenario{FailoverAtHours: []int64{6}, Policy: PolicyPreserve}
	for _, workers := range []int{1, 4, 16} {
		d := churned(t, scenarioConfig(23, sc), Options{Workers: workers, RoundHours: 4}, 12)
		if !bytes.Equal(snapshotBytes(t, d), want) {
			t.Errorf("workers=%d: preserve-policy failover changed the snapshot", workers)
		}
		if v := d.Stats(); v.Failovers != 1 || v.LastFailoverHour != 6 {
			t.Errorf("workers=%d: failovers=%d last=%d, want 1 at hour 6", workers, v.Failovers, v.LastFailoverHour)
		}
	}
}

// TestFailoverRenumberDeterministic is the other half: a renumbering
// takeover produces seed-reproducible snapshots at every worker count
// and round granularity, different from the uninterrupted run, with
// every active subscriber renumbered.
func TestFailoverRenumberDeterministic(t *testing.T) {
	sc := &Scenario{FailoverAtHours: []int64{6}, Policy: PolicyRenumber}
	ref := churned(t, scenarioConfig(23, sc), Options{Workers: 1, RoundHours: 4}, 12)
	want := snapshotBytes(t, ref)
	wantStats := statsBytes(t, ref)
	for _, workers := range []int{4, 16} {
		d := churned(t, scenarioConfig(23, sc), Options{Workers: workers, RoundHours: 4}, 12)
		if !bytes.Equal(snapshotBytes(t, d), want) {
			t.Errorf("workers=%d: renumber-policy snapshot not reproducible", workers)
		}
		if !bytes.Equal(statsBytes(t, d), wantStats) {
			t.Errorf("workers=%d: renumber-policy stats not reproducible", workers)
		}
	}
	coarse := churned(t, scenarioConfig(23, sc), Options{Workers: 4, RoundHours: 12}, 12)
	if !bytes.Equal(snapshotBytes(t, coarse), want) {
		t.Error("renumber-policy snapshot depends on round granularity")
	}
	uninterrupted := churned(t, testConfig(23), Options{Workers: 4, RoundHours: 4}, 12)
	if bytes.Equal(snapshotBytes(t, uninterrupted), want) {
		t.Error("renumber-policy failover left the snapshot unchanged")
	}
	v := ref.Stats()
	if v.Events.FailoverRenumbers == 0 {
		t.Fatal("no subscribers renumbered by the failover")
	}
	// Mass renumbering must be visible as generation bumps: RADIUS
	// subscribers always draw fresh addresses on takeover.
	if v.Events.V4Changes <= uninterrupted.Stats().Events.V4Changes {
		t.Errorf("failover renumbering did not raise v4 changes (%d vs %d)",
			v.Events.V4Changes, uninterrupted.Stats().Events.V4Changes)
	}
}

// TestFailoverResumeReplay: kill/resume across a failover replays to
// the identical state.
func TestFailoverResumeReplay(t *testing.T) {
	sc := &Scenario{FailoverAtHours: []int64{5}, Policy: PolicyRenumber}
	cfg := scenarioConfig(31, sc)
	ref := churned(t, cfg, Options{Workers: 4, RoundHours: 2}, 10)

	dir := t.TempDir()
	first := churned(t, cfg, Options{Workers: 4, RoundHours: 2, CheckpointDir: dir}, 8)
	_ = first // crashed after hour 8's watermark

	second, err := New(cfg, Options{Workers: 4, RoundHours: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if h, err := second.Resume(); err != nil || h != 8 {
		t.Fatalf("Resume() = %d, %v; want 8, nil", h, err)
	}
	if err := second.Churn(10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, second), snapshotBytes(t, ref)) {
		t.Error("resumed daemon diverged from uninterrupted run across a failover")
	}
}

// TestFailoverMeanSchedule: exponential failover scheduling fires
// deterministically from the seed.
func TestFailoverMeanSchedule(t *testing.T) {
	sc := &Scenario{FailoverMeanHours: 6, Policy: PolicyRenumber}
	a := churned(t, scenarioConfig(51, sc), Options{Workers: 4, RoundHours: 3}, 48)
	b := churned(t, scenarioConfig(51, sc), Options{Workers: 2, RoundHours: 1}, 48)
	va, vb := a.Stats(), b.Stats()
	if va.Failovers == 0 {
		t.Fatal("mean-scheduled scenario fired no failovers in 48h")
	}
	if va.Failovers != vb.Failovers || va.LastFailoverHour != vb.LastFailoverHour {
		t.Errorf("failover schedule not reproducible: %d@%d vs %d@%d",
			va.Failovers, va.LastFailoverHour, vb.Failovers, vb.LastFailoverHour)
	}
	if !bytes.Equal(snapshotBytes(t, a), snapshotBytes(t, b)) {
		t.Error("mean-scheduled failovers not deterministic across workers/rounds")
	}
}

// TestCoADisconnectActivity: operator actions fire, renumber sessions
// mid-lease, and stay deterministic.
func TestCoADisconnectActivity(t *testing.T) {
	sc := &Scenario{CoAMeanHours: 12, DisconnectMeanHours: 48}
	ref := churned(t, scenarioConfig(77, sc), Options{Workers: 1, RoundHours: 6}, 48)
	v := ref.Stats()
	if v.Events.CoAs == 0 {
		t.Error("no CoAs delivered")
	}
	if v.Events.Disconnects == 0 {
		t.Error("no operator disconnects delivered")
	}
	plain := churned(t, testConfig(77), Options{Workers: 1, RoundHours: 6}, 48)
	if v.Events.V4Changes <= plain.Stats().Events.V4Changes {
		t.Errorf("CoAs did not force extra renumbering (%d vs %d v4 changes)",
			v.Events.V4Changes, plain.Stats().Events.V4Changes)
	}
	for _, workers := range []int{4, 16} {
		d := churned(t, scenarioConfig(77, sc), Options{Workers: workers, RoundHours: 6}, 48)
		if !bytes.Equal(snapshotBytes(t, d), snapshotBytes(t, ref)) {
			t.Errorf("workers=%d: CoA/Disconnect run not deterministic", workers)
		}
	}
}

// TestRelayTopology: DHCP attach traffic crossing a lossy aggregation
// chain still converges deterministically, with drops accounted.
func TestRelayTopology(t *testing.T) {
	sc := &Scenario{RelayHops: 2, RelayDrop: 0.2}
	ref := churned(t, scenarioConfig(99, sc), Options{Workers: 1, RoundHours: 6}, 24)
	v := ref.Stats()
	if v.Events.RelayDrops == 0 {
		t.Error("no relay drops with 20% per-hop loss")
	}
	// The business (DHCP) group must still come up despite the loss.
	for _, g := range v.Groups {
		if g.Backend == BackendDHCP && g.Active < g.Subscribers/2 {
			t.Errorf("group %s: only %d/%d active behind the relay chain", g.Name, g.Active, g.Subscribers)
		}
	}
	for _, workers := range []int{4, 16} {
		d := churned(t, scenarioConfig(99, sc), Options{Workers: workers, RoundHours: 6}, 24)
		if !bytes.Equal(snapshotBytes(t, d), snapshotBytes(t, ref)) {
			t.Errorf("workers=%d: relay run not deterministic", workers)
		}
	}
	// Lossless relays: wire-routed but nothing dropped.
	clean := churned(t, scenarioConfig(99, &Scenario{RelayHops: 2}), Options{Workers: 4, RoundHours: 6}, 24)
	cv := clean.Stats()
	if cv.Events.RelayDrops != 0 || cv.Events.RelayOutages != 0 {
		t.Errorf("lossless relay chain recorded drops: %+v", cv.Events)
	}
}

// TestPairSyncPromote: the HA pair's codec-level state sync holds
// across rounds and a failover, and promotion yields a daemon whose
// state matches a single-daemon run of the same scenario.
func TestPairSyncPromote(t *testing.T) {
	sc := &Scenario{FailoverAtHours: []int64{4}, Policy: PolicyRenumber}
	cfg := scenarioConfig(123, sc)
	p, err := NewPair(cfg, Options{Workers: 4, RoundHours: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Churn(8); err != nil {
		t.Fatal(err)
	}
	if p.Syncs() == 0 {
		t.Fatal("pair verified no syncs")
	}
	if role := p.Active().HA().Role; role != "active" {
		t.Errorf("active role = %q", role)
	}
	promoted := p.Promote()
	if role := promoted.HA().Role; role != "active" {
		t.Errorf("promoted role = %q", role)
	}
	if role := p.Standby().HA().Role; role != "standby" {
		t.Errorf("demoted role = %q", role)
	}
	if err := promoted.Churn(12); err != nil {
		t.Fatal(err)
	}
	solo := churned(t, cfg, Options{Workers: 4, RoundHours: 2}, 12)
	var buf bytes.Buffer
	if err := promoted.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), snapshotBytes(t, solo)) {
		t.Error("promoted standby diverged from a solo run of the same scenario")
	}
	ha := promoted.HA()
	if len(ha.FailoverHours) != 1 || ha.FailoverHours[0] != 4 {
		t.Errorf("promoted FailoverHours = %v, want [4]", ha.FailoverHours)
	}
}
