// Package bng is the persistent assignment-plane daemon behind
// `dynamips serve-bng`: subscriber groups with address-pool profiles
// (the osvbng shape — named v4 pools and v6 delegation profiles
// referenced by groups), the existing DHCPv4/DHCPv6/RADIUS servers
// sharded behind a lock-striped session table (internal/bng/stripe),
// and a virtual-time event loop that churns lease-renewal, renumbering
// and flap events for millions of subscribers deterministically.
//
// Determinism contract: every shard owns a fixed subset of subscribers
// (stripe routing of the dense key), its own per-group server instances
// carved from disjoint sub-pools, its own event heap ordered by
// (time, key), and per-subscriber SplitMix64 draw streams. Shards never
// communicate, so processing them with any `-workers` count — or
// killing the daemon and replaying from a checkpoint watermark —
// produces byte-identical session-table snapshots.
package bng

import (
	"fmt"
	"net/netip"
)

// Backend names a group's assignment machinery.
const (
	// BackendRADIUS assigns both families through one RADIUS server
	// per (group, shard): fresh framed address and delegated prefix on
	// every (re)connect — PPPoE-style residential and mobile access.
	BackendRADIUS = "radius"
	// BackendDHCP runs a sticky DHCPv4 server plus (when a delegation
	// profile is attached) a DHCPv6-PD server per (group, shard) —
	// cable-style access with stable addresses.
	BackendDHCP = "dhcp"
)

// PoolProfile is a named IPv4 address pool, the osvbng "ipv4-profile"
// shape: groups reference it for framed-address assignment.
type PoolProfile struct {
	Name string `json:"name"`
	// Network is the aggregate the per-shard pools are carved from.
	Network netip.Prefix `json:"network"`
	// LeaseSeconds is the subscriber-visible lease length; it drives
	// the renewal cadence (T1 = lease/2), not server-side reclaim.
	LeaseSeconds uint32 `json:"lease_seconds"`
}

// DelegationProfile is a named IPv6 prefix-delegation pool.
type DelegationProfile struct {
	Name string `json:"name"`
	// Network is the v6 aggregate the per-shard pools are carved from.
	Network netip.Prefix `json:"network"`
	// DelegatedLen is the per-subscriber delegation length (≤ 64).
	DelegatedLen int `json:"delegated_len"`
}

// Group is one subscriber population: a pool profile, an optional
// delegation profile, and the churn cadences that drive its events.
type Group struct {
	Name        string `json:"name"`
	Subscribers int    `json:"subscribers"`
	// Backend is BackendRADIUS or BackendDHCP.
	Backend string `json:"backend"`
	// V4 is the group's IPv4 pool profile.
	V4 PoolProfile `json:"v4"`
	// V6 is the delegation profile; nil means IPv4-only.
	V6 *DelegationProfile `json:"v6,omitempty"`
	// RenumberMeanHours is the mean interval between forced address
	// changes (ISP-side renumbering; §2.2 of the paper).
	RenumberMeanHours float64 `json:"renumber_mean_hours"`
	// FlapMeanHours is the mean interval between subscriber
	// disconnects; DowntimeMeanMinutes the mean off-line gap.
	FlapMeanHours       float64 `json:"flap_mean_hours"`
	DowntimeMeanMinutes float64 `json:"downtime_mean_minutes"`
}

// Config is the daemon's full specification. It is the checkpoint
// identity: two daemons with equal Configs replay identical histories.
type Config struct {
	Seed uint64 `json:"seed"`
	// ShardBits sets the stripe width: 2^ShardBits shards, each with
	// its own servers, event heap, and pool slice.
	ShardBits int     `json:"shard_bits"`
	Groups    []Group `json:"groups"`
	// Scenario layers operator events — failovers, CoA/Disconnect,
	// relay topologies — over the baseline churn; nil runs none and
	// keeps pre-scenario checkpoint identities valid.
	Scenario *Scenario `json:"scenario,omitempty"`
}

// headroomNum/headroomDen is the required pool slack: each shard's pool
// must hold at least 3× its expected subscriber share (plus a small
// absolute margin) so renumbering — which allocates a fresh address
// before releasing the old one — and shard-assignment variance never
// exhaust a pool.
const (
	headroom       = 3
	headroomMargin = 16
)

// Validate checks the configuration and the per-shard pool arithmetic.
func (c *Config) Validate() error {
	if c.ShardBits < 0 || c.ShardBits > 14 {
		return fmt.Errorf("bng: shard bits %d outside [0, 14]", c.ShardBits)
	}
	if len(c.Groups) == 0 {
		return fmt.Errorf("bng: no subscriber groups")
	}
	if len(c.Groups) > 1<<16 {
		return fmt.Errorf("bng: %d groups exceed the 65536 group limit", len(c.Groups))
	}
	shards := 1 << uint(c.ShardBits)
	for gi := range c.Groups {
		g := &c.Groups[gi]
		if g.Name == "" {
			return fmt.Errorf("bng: group %d has no name", gi)
		}
		if g.Subscribers <= 0 {
			return fmt.Errorf("bng: group %s: no subscribers", g.Name)
		}
		if g.Subscribers >= 1<<32 {
			return fmt.Errorf("bng: group %s: %d subscribers exceed the 32-bit index space", g.Name, g.Subscribers)
		}
		if g.Backend != BackendRADIUS && g.Backend != BackendDHCP {
			return fmt.Errorf("bng: group %s: unknown backend %q", g.Name, g.Backend)
		}
		if !g.V4.Network.IsValid() || !g.V4.Network.Addr().Is4() {
			return fmt.Errorf("bng: group %s: v4 profile %q needs an IPv4 network", g.Name, g.V4.Name)
		}
		if g.V4.LeaseSeconds == 0 {
			return fmt.Errorf("bng: group %s: v4 profile %q has zero lease", g.Name, g.V4.Name)
		}
		perShard := (g.Subscribers + shards - 1) / shards
		need := uint64(perShard)*headroom + headroomMargin
		shardLen := g.V4.Network.Bits() + c.ShardBits
		if shardLen > 30 {
			return fmt.Errorf("bng: group %s: %v cannot be split into %d shard pools", g.Name, g.V4.Network, shards)
		}
		if cap4 := uint64(1) << uint(32-shardLen); cap4 < need {
			return fmt.Errorf("bng: group %s: shard pool /%d holds %d addresses, need %d (%d subscribers × %d shards, %dx headroom)",
				g.Name, shardLen, cap4, need, g.Subscribers, shards, headroom)
		}
		if g.V6 != nil {
			v6 := g.V6
			if !v6.Network.IsValid() || !v6.Network.Addr().Is6() || v6.Network.Addr().Is4In6() {
				return fmt.Errorf("bng: group %s: v6 profile %q needs an IPv6 network", g.Name, v6.Name)
			}
			if v6.DelegatedLen <= v6.Network.Bits() || v6.DelegatedLen > 64 {
				return fmt.Errorf("bng: group %s: delegated /%d outside (%d, 64]", g.Name, v6.DelegatedLen, v6.Network.Bits())
			}
			shardLen6 := v6.Network.Bits() + c.ShardBits
			if shardLen6 >= v6.DelegatedLen {
				return fmt.Errorf("bng: group %s: %v cannot carve %d shard pools of /%d delegations",
					g.Name, v6.Network, shards, v6.DelegatedLen)
			}
			if cap6 := uint64(1) << uint(v6.DelegatedLen-shardLen6); cap6 < need {
				return fmt.Errorf("bng: group %s: shard pool /%d holds %d /%d delegations, need %d",
					g.Name, shardLen6, cap6, v6.DelegatedLen, need)
			}
		}
		if g.RenumberMeanHours <= 0 || g.FlapMeanHours <= 0 || g.DowntimeMeanMinutes <= 0 {
			return fmt.Errorf("bng: group %s: renumber/flap/downtime means must be positive", g.Name)
		}
	}
	return c.Scenario.Validate()
}

// Subscribers returns the configured total across groups.
func (c *Config) Subscribers() int {
	n := 0
	for i := range c.Groups {
		n += c.Groups[i].Subscribers
	}
	return n
}

func mustPfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// DefaultConfig is the built-in three-group BNG: PPPoE residential
// (RADIUS, dual-stack /56), sticky-DHCP business (dual-stack /56), and
// CGNAT mobile (RADIUS from 100.64.0.0/10, bare /64s) — the populations
// whose assignment signatures the paper contrasts. totalSubs is split
// 64/16/20 across them.
func DefaultConfig(totalSubs int, seed uint64) Config {
	if totalSubs < 100 {
		totalSubs = 100
	}
	res := totalSubs * 64 / 100
	biz := totalSubs * 16 / 100
	mob := totalSubs - res - biz
	return Config{
		Seed:      seed,
		ShardBits: 8,
		Groups: []Group{
			{
				Name:        "residential",
				Subscribers: res,
				Backend:     BackendRADIUS,
				V4:          PoolProfile{Name: "res-v4", Network: mustPfx("10.0.0.0/9"), LeaseSeconds: 14400},
				V6:          &DelegationProfile{Name: "res-v6", Network: mustPfx("2001:db8::/34"), DelegatedLen: 56},
				// Daily-ish forced renumbering, the DTAG/Orange regime.
				RenumberMeanHours:   24,
				FlapMeanHours:       96,
				DowntimeMeanMinutes: 20,
			},
			{
				Name:        "business",
				Subscribers: biz,
				Backend:     BackendDHCP,
				V4:          PoolProfile{Name: "biz-v4", Network: mustPfx("10.128.0.0/12"), LeaseSeconds: 86400},
				V6:          &DelegationProfile{Name: "biz-v6", Network: mustPfx("2001:db8:8000::/34"), DelegatedLen: 56},
				// Sticky DHCP: renumbering is rare and flaps re-bind the
				// same address.
				RenumberMeanHours:   2160,
				FlapMeanHours:       336,
				DowntimeMeanMinutes: 10,
			},
			{
				Name:        "mobile",
				Subscribers: mob,
				Backend:     BackendRADIUS,
				V4:          PoolProfile{Name: "cgn-v4", Network: mustPfx("100.64.0.0/10"), LeaseSeconds: 7200},
				V6:          &DelegationProfile{Name: "mob-v6", Network: mustPfx("2001:db8:4000::/34"), DelegatedLen: 64},
				// Mobile sessions are short and every reconnect
				// renumbers ("87% of /64s seen once", §4.3).
				RenumberMeanHours:   12,
				FlapMeanHours:       8,
				DowntimeMeanMinutes: 45,
			},
		},
	}
}
