package bng

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"sync"

	"dynamips/internal/bng/stripe"
	"dynamips/internal/checkpoint"
	"dynamips/internal/netutil"
	"dynamips/internal/obs"
	"dynamips/internal/parallel"
	"dynamips/internal/sketch"
)

// Options are the run-shape knobs that do NOT affect daemon state:
// worker fan-out, stats-round granularity, checkpointing, and
// observability. None of them enter the checkpoint identity.
type Options struct {
	// Workers bounds the per-round shard fan-out (0 = GOMAXPROCS).
	Workers int
	// RoundHours is the churn round granularity: stats/watermark
	// refresh cadence in virtual hours (min 1).
	RoundHours int64
	// CheckpointDir, when set, persists a replay watermark after every
	// round; a restarted daemon with the same Config replays to it.
	CheckpointDir string
	// Obs instruments round/event counters (nil-safe).
	Obs *obs.Observer
	// Role labels the daemon in the /ha view ("active" when empty); it
	// never affects state.
	Role string
}

// GroupStats is one group's live state in the stats view.
type GroupStats struct {
	Name        string `json:"name"`
	Backend     string `json:"backend"`
	Subscribers int    `json:"subscribers"`
	Active      int    `json:"active"`
}

// PoolStats is one (group, family) pool's occupancy, the /pools API
// payload and the shape remote generators consume.
type PoolStats struct {
	Group   string `json:"group"`
	Profile string `json:"profile"`
	Family  int    `json:"family"` // 4 or 6
	Network string `json:"network"`
	// DelegatedLen is the per-subscriber assignment length (32 for
	// IPv4 framed addresses).
	DelegatedLen int `json:"delegated_len"`
	// LeaseSeconds is the subscriber-visible lease cadence.
	LeaseSeconds uint32 `json:"lease_seconds"`
	Capacity     uint64 `json:"capacity"`
	Active       int    `json:"active"`
}

// StatsView is the daemon's aggregate state at a round boundary: the
// /stats payload. Every field derives deterministically from the
// engine state, so two daemons at the same virtual hour render
// byte-identical views regardless of worker count or kill/resume.
type StatsView struct {
	VirtualHours   int64        `json:"virtual_hours"`
	Subscribers    int          `json:"subscribers"`
	ActiveSessions int          `json:"active_sessions"`
	TableHash      string       `json:"table_hash"`
	Events         ShardStats   `json:"events"`
	Groups         []GroupStats `json:"groups"`
	Pools          []PoolStats  `json:"pools"`
	// Failovers counts scenario failovers fired so far;
	// LastFailoverHour is the most recent one (0 = none yet).
	Failovers        int   `json:"failovers"`
	LastFailoverHour int64 `json:"last_failover_hour"`
}

// Daemon hosts the sharded assignment plane: the stripe table, one
// engine per stripe, and the cached stats view the HTTP API serves.
type Daemon struct {
	cfg     Config
	opt     Options
	table   *stripe.Table
	engines []*shardEngine

	// cumSubs[g] is the number of subscribers in groups < g: the
	// pagination index for /sessions.
	cumSubs []int

	mu        sync.RWMutex
	hours     int64
	view      StatsView
	statsJSON []byte
	role      string

	// Round-boundary streaming summaries: the stripe partials merged in
	// stripe order, their canonical /sketch JSON view, and the CRC-framed
	// binary encoding. All three are pure functions of engine state, so
	// they are byte-identical at any worker count.
	sketchSet  *sketch.Set
	sketchView SketchView
	sketchJSON []byte
	sketchBin  []byte

	// Failover schedule (scenario-driven). failCursor draws exponential
	// gaps when FailoverMeanHours is set; failIdx walks the explicit
	// FailoverAtHours list. nextFail is the next failover hour (0 =
	// none pending); failovers records fired hours. Only the churn
	// goroutine writes these; readers go through mu.
	failCursor uint64
	failIdx    int
	nextFail   int64
	failovers  []int64

	confHash string
}

// failoverSalt separates the daemon's failover-gap stream from every
// per-subscriber cursor.
const failoverSalt = 0xFA170FEE

// New validates cfg and builds the daemon with every subscriber's
// attach event pending at t=0; no churn has run yet.
func New(cfg Config, opt Options) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.RoundHours < 1 {
		opt.RoundHours = 1
	}
	table, err := stripe.New(cfg.ShardBits)
	if err != nil {
		return nil, err
	}
	engines, err := buildEngines(&cfg, table)
	if err != nil {
		return nil, err
	}
	hash, err := checkpoint.HashConfig(cfg)
	if err != nil {
		return nil, fmt.Errorf("bng: hashing config: %w", err)
	}
	d := &Daemon{
		cfg:      cfg,
		opt:      opt,
		table:    table,
		engines:  engines,
		confHash: hash,
	}
	d.cumSubs = make([]int, len(cfg.Groups)+1)
	for gi := range cfg.Groups {
		d.cumSubs[gi+1] = d.cumSubs[gi] + cfg.Groups[gi].Subscribers
	}
	d.role = opt.Role
	if d.role == "" {
		d.role = "active"
	}
	if cfg.Scenario.hasFailover() {
		d.failCursor = stripe.Mix64(cfg.Seed ^ failoverSalt)
		d.advanceFailover(0)
	}
	d.refreshView()
	return d, nil
}

// Config returns the daemon's validated configuration.
func (d *Daemon) Config() Config { return d.cfg }

// Hours returns the churned virtual time.
func (d *Daemon) Hours() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.hours
}

// Table exposes the session table (read-only use).
func (d *Daemon) Table() *stripe.Table { return d.table }

// Churn advances the daemon to the given virtual hour, processing
// rounds of Options.RoundHours: each round fans the shards out across
// workers (each engine exclusively borrows its stripe), then refreshes
// the stats view and persists the checkpoint watermark.
func (d *Daemon) Churn(toHours int64) error {
	for {
		d.mu.RLock()
		h := d.hours
		d.mu.RUnlock()
		if h >= toHours {
			return nil
		}
		round := h + d.opt.RoundHours
		if round > toHours {
			round = toHours
		}
		// Clamp rounds to the next failover hour so the takeover fires
		// at its exact virtual time regardless of round granularity.
		if nf := d.nextFailover(); nf > h && nf < round {
			round = nf
		}
		if err := d.runRound(round); err != nil {
			return err
		}
	}
}

// nextFailover returns the next pending failover hour (0 = none).
func (d *Daemon) nextFailover() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.nextFail
}

// advanceFailover computes the next scheduled failover hour strictly
// after from, under d.mu (or before the daemon is shared).
func (d *Daemon) advanceFailover(from int64) {
	sc := d.cfg.Scenario
	if !sc.hasFailover() {
		d.nextFail = 0
		return
	}
	if len(sc.FailoverAtHours) > 0 {
		for d.failIdx < len(sc.FailoverAtHours) && sc.FailoverAtHours[d.failIdx] <= from {
			d.failIdx++
		}
		if d.failIdx < len(sc.FailoverAtHours) {
			d.nextFail = sc.FailoverAtHours[d.failIdx]
		} else {
			d.nextFail = 0
		}
		return
	}
	gap := (expSeconds(&d.failCursor, sc.FailoverMeanHours*3600) + 3599) / 3600
	if gap < 1 {
		gap = 1
	}
	d.nextFail = from + gap
}

func (d *Daemon) runRound(toHours int64) error {
	until := toHours * 3600
	fire := d.nextFailover() == toHours && toHours != 0
	renumber := fire && d.cfg.Scenario.EffectivePolicy() == PolicyRenumber
	var span *obs.Span
	if d.opt.Obs != nil {
		span = d.opt.Obs.StartSpan("bng.round")
	}
	_, err := parallel.MapErr(len(d.engines), d.opt.Workers, func(sh int) (struct{}, error) {
		b := d.table.Borrow(sh)
		defer b.Release()
		if err := d.engines[sh].advance(b, until); err != nil {
			return struct{}{}, err
		}
		if renumber {
			// A lease-preserving takeover leaves the stripes untouched;
			// the renumbering one re-runs every assignment in place.
			return struct{}{}, d.engines[sh].failoverRenumber(b, until, d.cfg.Seed)
		}
		return struct{}{}, nil
	})
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.hours = toHours
	if fire {
		d.failovers = append(d.failovers, toHours)
		d.advanceFailover(toHours)
	}
	d.mu.Unlock()
	d.refreshView()
	if d.opt.Obs != nil {
		d.mu.RLock()
		v := d.view
		d.mu.RUnlock()
		d.opt.Obs.Counter("bng_rounds").Inc()
		d.opt.Obs.Gauge("bng_active_sessions").Set(int64(v.ActiveSessions))
		d.opt.Obs.Gauge("bng_events_total").Set(int64(v.Events.Events))
		if fire {
			d.opt.Obs.Counter("bng_failovers").Inc()
		}
		d.opt.Obs.Advance(1)
		span.End()
	}
	if d.opt.CheckpointDir != "" {
		if err := d.writeWatermark(); err != nil {
			return err
		}
	}
	return nil
}

// refreshView recomputes the cached stats view and its canonical JSON
// from one pass over the sorted snapshot.
func (d *Daemon) refreshView() {
	snap := d.table.SnapshotSorted()
	groups := make([]GroupStats, len(d.cfg.Groups))
	var pools []PoolStats
	for gi := range d.cfg.Groups {
		g := &d.cfg.Groups[gi]
		groups[gi] = GroupStats{Name: g.Name, Backend: g.Backend, Subscribers: g.Subscribers}
		pools = append(pools, PoolStats{
			Group:        g.Name,
			Profile:      g.V4.Name,
			Family:       4,
			Network:      g.V4.Network.String(),
			DelegatedLen: 32,
			LeaseSeconds: g.V4.LeaseSeconds,
			Capacity:     uint64(1) << uint(32-g.V4.Network.Bits()),
		})
		if g.V6 != nil {
			pools = append(pools, PoolStats{
				Group:        g.Name,
				Profile:      g.V6.Name,
				Family:       6,
				Network:      g.V6.Network.String(),
				DelegatedLen: g.V6.DelegatedLen,
				LeaseSeconds: g.V4.LeaseSeconds,
				Capacity:     uint64(1) << uint(g.V6.DelegatedLen-g.V6.Network.Bits()),
			})
		}
	}
	// v4Idx/v6Idx map group -> its pool rows (v6Idx -1 for v4-only).
	v4Idx := make([]int, len(d.cfg.Groups))
	v6Idx := make([]int, len(d.cfg.Groups))
	row := 0
	for gi := range d.cfg.Groups {
		v4Idx[gi] = row
		row++
		v6Idx[gi] = -1
		if d.cfg.Groups[gi].V6 != nil {
			v6Idx[gi] = row
			row++
		}
	}
	for _, s := range snap {
		gi := int(s.Key >> 32)
		if gi >= len(groups) {
			continue
		}
		groups[gi].Active++
		if s.Addr4 != 0 {
			pools[v4Idx[gi]].Active++
		}
		if s.Pfx6Len != 0 && v6Idx[gi] >= 0 {
			pools[v6Idx[gi]].Active++
		}
	}
	var stats ShardStats
	for _, e := range d.engines {
		stats.add(e.stats)
	}
	d.mu.RLock()
	hours := d.hours
	nFail := len(d.failovers)
	var lastFail int64
	if nFail > 0 {
		lastFail = d.failovers[nFail-1]
	}
	d.mu.RUnlock()
	view := StatsView{
		VirtualHours:     hours,
		Subscribers:      d.cfg.Subscribers(),
		ActiveSessions:   len(snap),
		TableHash:        fmt.Sprintf("%016x", stripe.Hash(snap)),
		Events:           stats,
		Groups:           groups,
		Pools:            pools,
		Failovers:        nFail,
		LastFailoverHour: lastFail,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(view) // a buffer write of a plain struct cannot fail
	merged := d.mergeEngineSketches()
	skView := buildSketchView(hours, merged)
	var skBuf bytes.Buffer
	skEnc := json.NewEncoder(&skBuf)
	skEnc.SetIndent("", "  ")
	_ = skEnc.Encode(skView)
	d.mu.Lock()
	d.view = view
	d.statsJSON = append(d.statsJSON[:0], buf.Bytes()...)
	d.sketchSet = merged
	d.sketchView = skView
	d.sketchJSON = append(d.sketchJSON[:0], skBuf.Bytes()...)
	d.sketchBin = merged.Encode()
	d.mu.Unlock()
}

// Stats returns the cached round-boundary stats view.
func (d *Daemon) Stats() StatsView {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.view
}

// WriteStats writes the canonical /stats JSON.
func (d *Daemon) WriteStats(w io.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, err := w.Write(d.statsJSON)
	return err
}

// WriteSketchJSON writes the canonical /sketch full-view JSON.
func (d *Daemon) WriteSketchJSON(w io.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, err := w.Write(d.sketchJSON)
	return err
}

// WriteSnapshot writes the canonical session-table snapshot.
func (d *Daemon) WriteSnapshot(w io.Writer) error {
	return stripe.EncodeSnapshot(w, d.table.SnapshotSorted())
}

// SessionView is one /sessions item. Every configured subscriber has a
// stable slot in the listing (down subscribers report active=false), so
// pagination offsets never shift under churn.
type SessionView struct {
	Key    uint64 `json:"key"`
	Group  string `json:"group"`
	Index  uint32 `json:"index"`
	Active bool   `json:"active"`
	Addr4  string `json:"addr4,omitempty"`
	Pfx6   string `json:"prefix6,omitempty"`
	Start  int64  `json:"start,omitempty"`
	Expiry int64  `json:"expiry,omitempty"`
	Gen    uint32 `json:"gen"`
	Renews uint32 `json:"renews"`
}

// Sessions returns the page of subscriber slots [offset, offset+limit)
// in dense key order.
func (d *Daemon) Sessions(offset, limit int) []SessionView {
	total := d.cumSubs[len(d.cumSubs)-1]
	if offset < 0 || offset >= total || limit <= 0 {
		return nil
	}
	end := offset + limit
	if end > total {
		end = total
	}
	out := make([]SessionView, 0, end-offset)
	gi := 0
	for d.cumSubs[gi+1] <= offset {
		gi++
	}
	for i := offset; i < end; i++ {
		for d.cumSubs[gi+1] <= i {
			gi++
		}
		idx := uint32(i - d.cumSubs[gi])
		key := uint64(gi)<<32 | uint64(idx)
		v := SessionView{Key: key, Group: d.cfg.Groups[gi].Name, Index: idx}
		if s, ok := d.table.Get(key); ok {
			v.Active = true
			v.Addr4 = netutil.AddrFromU32(s.Addr4).String()
			if s.Pfx6Len != 0 {
				v.Pfx6 = netip.PrefixFrom(netutil.AddrFrom128(s.Pfx6Hi, 0), int(s.Pfx6Len)).String()
			}
			v.Start = s.Start
			v.Expiry = s.Expiry
			v.Gen = s.Gen
			v.Renews = s.Renews
		}
		out = append(out, v)
	}
	return out
}

// watermark is the replay checkpoint: enough to re-derive the full
// state by deterministic replay, plus the identity that guards against
// resuming a different configuration or code version.
type watermark struct {
	ConfigHash string `json:"config_hash"`
	Code       string `json:"code"`
	Hours      int64  `json:"hours"`
}

const watermarkFile = "bng-watermark.json"

// ErrWatermarkMismatch reports a watermark written by a different
// configuration or code version.
var ErrWatermarkMismatch = errors.New("bng: checkpoint watermark does not match this config/code")

func (d *Daemon) writeWatermark() error {
	if err := os.MkdirAll(d.opt.CheckpointDir, 0o755); err != nil {
		return fmt.Errorf("bng: checkpoint dir: %w", err)
	}
	wm := watermark{ConfigHash: d.confHash, Code: checkpoint.CodeVersion(), Hours: d.Hours()}
	path := filepath.Join(d.opt.CheckpointDir, watermarkFile)
	return checkpoint.WriteFileAtomic(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(wm)
	})
}

// Resume replays churn up to the checkpoint watermark, if one exists.
// Deterministic replay reproduces the pre-crash state byte-for-byte.
// It returns the watermark hour (0 with no or fresh checkpoint) and
// ErrWatermarkMismatch when the watermark belongs to a different
// config or code version.
func (d *Daemon) Resume() (int64, error) {
	if d.opt.CheckpointDir == "" {
		return 0, nil
	}
	raw, err := os.ReadFile(filepath.Join(d.opt.CheckpointDir, watermarkFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("bng: reading watermark: %w", err)
	}
	var wm watermark
	if err := json.Unmarshal(raw, &wm); err != nil {
		return 0, fmt.Errorf("bng: decoding watermark: %w", err)
	}
	if wm.ConfigHash != d.confHash || wm.Code != checkpoint.CodeVersion() {
		return 0, ErrWatermarkMismatch
	}
	if wm.Hours <= d.Hours() {
		return wm.Hours, nil
	}
	if err := d.Churn(wm.Hours); err != nil {
		return 0, err
	}
	return wm.Hours, nil
}

// HAView is the /ha payload: the daemon's failover posture.
type HAView struct {
	Role     string `json:"role"`
	Policy   string `json:"policy"`
	Scenario string `json:"scenario,omitempty"`
	// FailoverHours lists fired failovers; NextFailoverHour is the next
	// scheduled one (0 = none pending).
	FailoverHours    []int64 `json:"failover_hours,omitempty"`
	NextFailoverHour int64   `json:"next_failover_hour"`
	VirtualHours     int64   `json:"virtual_hours"`
	TableHash        string  `json:"table_hash"`
}

// HA returns the daemon's high-availability posture.
func (d *Daemon) HA() HAView {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return HAView{
		Role:             d.role,
		Policy:           d.cfg.Scenario.EffectivePolicy(),
		Scenario:         d.cfg.Scenario.String(),
		FailoverHours:    append([]int64(nil), d.failovers...),
		NextFailoverHour: d.nextFail,
		VirtualHours:     d.hours,
		TableHash:        d.view.TableHash,
	}
}

// SetRole relabels the daemon (standby promotion); state is unaffected.
func (d *Daemon) SetRole(role string) {
	d.mu.Lock()
	d.role = role
	d.mu.Unlock()
}
