package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrwrapAnalyzer enforces error-chain discipline: when fmt.Errorf is handed
// an error value, the format must wrap it with %w so errors.Is/As keep
// working through the new message. Formatting with %v/%s flattens the chain
// and breaks callers matching net.ErrClosed, ErrPoolExhausted, etc.
var ErrwrapAnalyzer = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf given an error value must wrap it with %w",
	Run:  runErrwrap,
}

func runErrwrap(p *Pass) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if !isPkgFunc(calleeFunc(p.Pkg.Info, call), "fmt", "Errorf") {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true // dynamic format string: out of scope
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				t := exprType(p.Pkg.Info, arg)
				if t != nil && types.Implements(t, errIface) {
					p.Reportf("errwrap", arg.Pos(),
						"error value formatted into fmt.Errorf without %%w; use %%w so errors.Is/As see the cause")
					return true
				}
			}
			return true
		})
	}
}
