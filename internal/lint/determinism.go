package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces the repo's replayability contract inside the
// simulation/analysis packages: time must flow from an injected Clock (the
// servers' virtual epoch), never from the wall clock, and randomness must be
// drawn from a seeded *rand.Rand (or rand/v2 equivalent), never from the
// globally-seeded package-level functions.
//
// Allowlist: a time.Now() whose value feeds a socket deadline
// (SetDeadline/SetReadDeadline/SetWriteDeadline) is genuine wall-clock wire
// I/O — read timeouts on real UDP sockets — and is permitted.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now() and global math/rand in simulation packages; " +
		"inject a Clock and a seeded *rand.Rand instead",
	Run: runDeterminism,
}

// deadlineMethods name the wire-I/O calls whose arguments may legitimately
// derive from the wall clock.
var deadlineMethods = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

// randConstructors are the package-level math/rand functions that build
// seeded generators rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	if !p.Cfg.IsSimPackage(p.Pkg.ImportPath) {
		return
	}
	for _, f := range p.Pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if fn == nil {
				return true
			}
			if isPkgFunc(fn, "time", "Now") && !insideDeadlineCall(stack) {
				p.Reportf("determinism", call.Pos(),
					"time.Now() in simulation package %s: thread the injected Clock instead (wall clock is allowed only for socket deadlines)",
					p.Pkg.Types.Name())
			}
			if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") {
				sig, ok := fn.Type().(*types.Signature)
				if ok && sig.Recv() == nil && !randConstructors[fn.Name()] {
					p.Reportf("determinism", call.Pos(),
						"global %s.%s() in simulation package %s: draw from a seeded *rand.Rand",
						pkg.Name(), fn.Name(), p.Pkg.Types.Name())
				}
			}
			return true
		})
	}
}

// insideDeadlineCall reports whether the node whose ancestors are stack sits
// inside an argument of a Set*Deadline call.
func insideDeadlineCall(stack []ast.Node) bool {
	for _, n := range stack {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && deadlineMethods[sel.Sel.Name] {
			return true
		}
	}
	return false
}
