package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NetipAnalyzer enforces exact address handling: netip values must be
// compared with == / Compare (String() ordering sorts "10." before "2." and
// allocates), must key maps directly rather than via their String() form,
// and the exported API of analysis packages must speak netip.Addr/Prefix,
// never the ambiguous net.IP byte slice.
var NetipAnalyzer = &Analyzer{
	Name: "netip",
	Doc: "forbid String()-based comparison/map-keying of netip values and " +
		"net.IP in exported APIs of analysis packages",
	Run: runNetip,
}

var comparisonOps = map[token.Token]bool{
	token.LSS: true, token.GTR: true, token.LEQ: true,
	token.GEQ: true, token.EQL: true, token.NEQ: true,
}

func runNetip(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !comparisonOps[n.Op] {
					return true
				}
				lt, lok := netipStringCall(p.Pkg.Info, n.X)
				_, rok := netipStringCall(p.Pkg.Info, n.Y)
				if lok && rok {
					hint := "Compare"
					if n.Op == token.EQL || n.Op == token.NEQ {
						hint = "==" // netip values are comparable
					}
					p.Reportf("netip", n.Pos(),
						"comparing netip.%s values by String(); use %s on the values themselves", lt, hint)
				}
			case *ast.IndexExpr:
				mt := exprType(p.Pkg.Info, n.X)
				if mt == nil {
					return true
				}
				if _, ok := mt.Underlying().(*types.Map); !ok {
					return true
				}
				if kt, ok := netipStringCall(p.Pkg.Info, n.Index); ok {
					p.Reportf("netip", n.Index.Pos(),
						"netip.%s.String() used as map key; netip values are comparable — key the map by the value", kt)
				}
			}
			return true
		})
	}
	if p.Cfg.IsSimPackage(p.Pkg.ImportPath) {
		checkExportedNetIP(p)
	}
}

// netipStringCall reports whether e is a call x.String() with x a netip
// value, returning the netip type name.
func netipStringCall(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "String" {
		return "", false
	}
	name := netipTypeName(exprType(info, sel.X))
	return name, name != ""
}

// checkExportedNetIP flags net.IP appearing in the exported surface of an
// analysis package: exported function/method signatures and exported fields
// of exported struct types.
func checkExportedNetIP(p *Pass) {
	scope := p.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch obj := obj.(type) {
		case *types.Func:
			checkSignatureNetIP(p, obj)
		case *types.TypeName:
			named, ok := types.Unalias(obj.Type()).(*types.Named)
			if !ok {
				continue
			}
			if st, ok := named.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if f.Exported() && typeUsesNetIP(f.Type()) {
						p.Reportf("netip", f.Pos(),
							"exported field %s.%s uses net.IP; analysis packages expose netip.Addr/netip.Prefix", name, f.Name())
					}
				}
			}
			for i := 0; i < named.NumMethods(); i++ {
				if m := named.Method(i); m.Exported() {
					checkSignatureNetIP(p, m)
				}
			}
		}
	}
}

func checkSignatureNetIP(p *Pass, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for _, tuple := range []*types.Tuple{sig.Params(), sig.Results()} {
		for i := 0; i < tuple.Len(); i++ {
			v := tuple.At(i)
			if typeUsesNetIP(v.Type()) {
				p.Reportf("netip", fn.Pos(),
					"exported %s has net.IP in its signature; analysis packages expose netip.Addr/netip.Prefix", fn.Name())
				return
			}
		}
	}
}

// typeUsesNetIP reports whether t mentions net.IP anywhere in its structure.
func typeUsesNetIP(t types.Type) bool {
	return usesNetIPSeen(t, make(map[types.Type]bool))
}

func usesNetIPSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if namedFrom(t, "net", "IP") || namedFrom(t, "net", "IPNet") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return usesNetIPSeen(u.Elem(), seen)
	case *types.Slice:
		return usesNetIPSeen(u.Elem(), seen)
	case *types.Array:
		return usesNetIPSeen(u.Elem(), seen)
	case *types.Map:
		return usesNetIPSeen(u.Key(), seen) || usesNetIPSeen(u.Elem(), seen)
	case *types.Chan:
		return usesNetIPSeen(u.Elem(), seen)
	}
	return false
}
