package lint

import (
	"go/ast"
	"go/types"
)

// inspectStack walks f like ast.Inspect but hands fn the stack of ancestor
// nodes (outermost first, not including n itself).
func inspectStack(f ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// calleeFunc resolves the called package-level function or method of a call
// expression, or nil when the callee is not a *types.Func (e.g. a function
// value, conversion, or builtin).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// namedFrom reports whether t (after unaliasing) is the named type
// pkgPath.name, looking through pointers.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// netipTypeName returns "Addr", "Prefix", or "AddrPort" when t is (a pointer
// to) one of the net/netip value types, else "".
func netipTypeName(t types.Type) string {
	for _, name := range []string{"Addr", "Prefix", "AddrPort"} {
		if namedFrom(t, "net/netip", name) {
			return name
		}
	}
	return ""
}

// exprType returns the static type of e, or nil.
func exprType(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// lockNames are the sync types that must never be copied once used.
var lockNames = []string{"Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map"}

// containsLock reports whether a value of type t embeds synchronization
// state (directly or through structs/arrays), making copies invalid.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	for _, name := range lockNames {
		if named, ok := types.Unalias(t).(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name {
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	case *types.Named:
		return containsLockSeen(u.Underlying(), seen)
	}
	return false
}
