package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockscopeAnalyzer upgrades lock discipline from "don't copy locks"
// (lockcopy) to "scope them correctly":
//
//  1. `defer mu.Unlock()` inside a for/range loop runs at *function* exit,
//     not iteration end — the second iteration deadlocks (or the critical
//     section silently widens to the whole call). Unlock explicitly or
//     extract the loop body into a function.
//
//  2. A lock acquired on some path must be released on every path out of
//     the function: a `return` reached while a mutex is held (with no
//     deferred unlock registered) leaks the lock to the caller's next
//     acquisition — the hardest-to-reproduce deadlock class.
//
// The release check is a conservative linear walk over the statement tree:
// branches are analyzed independently and merged optimistically (a lock
// released in every fall-through branch counts as released), so the rule
// only fires on paths that definitely hold the lock.
var LockscopeAnalyzer = &Analyzer{
	Name: "lockscope",
	Doc: "forbid defer mu.Unlock() in loops and lock acquisitions not " +
		"released on all return paths",
	Run: runLockscope,
}

func runLockscope(p *Pass) {
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			checkLockScope(p, body)
		})
		// Function literals get the same treatment, independently of the
		// function they appear in (their defers have their own scope).
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
				checkLockScope(p, lit.Body)
			}
			return true
		})
	}
}

// lockFlow carries the interpreter state: which lock keys are held and
// which have a deferred release registered.
type lockFlow struct {
	pass     *Pass
	info     *types.Info
	deferred map[string]bool
}

func checkLockScope(p *Pass, body *ast.BlockStmt) {
	lf := &lockFlow{pass: p, info: p.Pkg.Info, deferred: make(map[string]bool)}
	held, terminated := lf.block(body.List, make(map[string]token.Pos), false)
	if terminated {
		return
	}
	// Falling off the end of the function is an implicit return.
	lf.reportHeld(held, body.End())
}

func (lf *lockFlow) reportHeld(held map[string]token.Pos, at token.Pos) {
	for _, key := range sortedKeys(held) {
		if lf.deferred[key] {
			continue
		}
		line := lf.pass.Fset.Position(held[key]).Line
		lf.pass.Reportf("lockscope", at,
			"return path leaves %s locked (acquired at line %d); unlock on every path or defer the unlock", key, line)
	}
}

func sortedKeys(m map[string]token.Pos) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// block interprets a statement list. held maps lock keys to their
// acquisition position; inLoop tracks whether a deferred unlock would be
// mis-scoped. It returns the fall-through state and whether the list always
// terminates (return/panic) before falling through.
func (lf *lockFlow) block(stmts []ast.Stmt, held map[string]token.Pos, inLoop bool) (map[string]token.Pos, bool) {
	for _, s := range stmts {
		var terminated bool
		held, terminated = lf.stmt(s, held, inLoop)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (lf *lockFlow) stmt(s ast.Stmt, held map[string]token.Pos, inLoop bool) (map[string]token.Pos, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, kind := lockCallKey(lf.info, call); key != "" {
				if kind == lockAcquire {
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return held, true
			}
		}
	case *ast.DeferStmt:
		if key, kind := lockCallKey(lf.info, s.Call); key != "" && kind == lockRelease {
			if inLoop {
				lf.pass.Reportf("lockscope", s.Pos(),
					"defer %s inside a loop runs at function exit, not iteration end; unlock explicitly or extract the loop body", types.ExprString(s.Call.Fun)+"()")
			} else {
				lf.deferred[key] = true
			}
		}
	case *ast.ReturnStmt:
		lf.reportHeld(held, s.Pos())
		return held, true
	case *ast.BlockStmt:
		return lf.block(s.List, held, inLoop)
	case *ast.LabeledStmt:
		return lf.stmt(s.Stmt, held, inLoop)
	case *ast.IfStmt:
		thenHeld, thenTerm := lf.block(s.Body.List, copyHeld(held), inLoop)
		elseHeld, elseTerm := copyHeld(held), false
		if s.Else != nil {
			elseHeld, elseTerm = lf.stmt(s.Else, elseHeld, inLoop)
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersectHeld(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		lf.loopBody(s.Body, held)
	case *ast.RangeStmt:
		lf.loopBody(s.Body, held)
	case *ast.SwitchStmt:
		lf.clauses(s.Body, held, inLoop)
	case *ast.TypeSwitchStmt:
		lf.clauses(s.Body, held, inLoop)
	case *ast.SelectStmt:
		lf.clauses(s.Body, held, inLoop)
	}
	return held, false
}

// loopBody analyzes a loop body in isolation: locks acquired inside an
// iteration must be released by its end (iteration 2 would deadlock), and
// returns inside the body see the surrounding held set.
func (lf *lockFlow) loopBody(body *ast.BlockStmt, held map[string]token.Pos) {
	out, terminated := lf.block(body.List, copyHeld(held), true)
	if terminated {
		return
	}
	for _, key := range sortedKeys(out) {
		if _, wasHeld := held[key]; !wasHeld && !lf.deferred[key] {
			lf.pass.Reportf("lockscope", out[key],
				"%s acquired in a loop body is not released by the end of the iteration; the next iteration deadlocks", key)
		}
	}
}

func (lf *lockFlow) clauses(body *ast.BlockStmt, held map[string]token.Pos, inLoop bool) {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			lf.block(c.Body, copyHeld(held), inLoop)
		case *ast.CommClause:
			lf.block(c.Body, copyHeld(held), inLoop)
		}
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// intersectHeld keeps only locks held on both fall-through branches: the
// optimistic merge that avoids false positives on "unlock early and return"
// patterns.
func intersectHeld(a, b map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(a))
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

type lockKind int

const (
	lockAcquire lockKind = iota + 1
	lockRelease
)

// lockCallKey identifies mu.Lock/RLock/Unlock/RUnlock calls on sync types
// and returns a stable textual key for the receiver ("s.mu", "crash.mu").
func lockCallKey(info *types.Info, call *ast.CallExpr) (string, lockKind) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0
	}
	var kind lockKind
	switch fn.Name() {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	return types.ExprString(sel.X), kind
}
