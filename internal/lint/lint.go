// Package lint is dynalint's analyzer engine: a stdlib-only static-analysis
// suite (go/ast + go/types) enforcing the repo's determinism, netip-hygiene,
// error-wrapping, and lock-discipline invariants. See README.md "Static
// analysis & determinism conventions" for the rule catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Config selects which packages each repo-specific rule applies to.
type Config struct {
	// SimPackages lists import-path suffixes of the simulation/analysis
	// packages where determinism rules (no wall clock, no global RNG), the
	// goroutine-discipline rules, and the exported-API netip rules are
	// enforced. An entry matches a package whose import path equals it or
	// ends with "/"+entry.
	SimPackages []string
	// SpawnPackages lists the packages allowed to contain `go` statements
	// when they are simulation packages: the shared worker-pool layer.
	SpawnPackages []string
	// HotPackages lists packages whose every function is held to the
	// hotalloc zero-allocation rules; individual functions elsewhere opt
	// in with a //lint:hotpath doc-comment marker.
	HotPackages []string
	// Rules restricts which analyzers run; empty means all.
	Rules []string
}

// DefaultConfig is the repository configuration: the packages that form the
// deterministic simulation and analysis core, including every package whose
// output feeds canonical snapshots (stats, obs, checkpoint, and the keying/
// classification helpers).
func DefaultConfig() Config {
	return Config{
		SimPackages: []string{
			"internal/isp",
			"internal/atlas",
			"internal/cdn",
			"internal/cdn/stream",
			"internal/core",
			"internal/dhcp4",
			"internal/dhcp6",
			"internal/faultnet",
			"internal/radius",
			"internal/cgnat",
			"internal/checkpoint",
			"internal/experiments",
			"internal/obs",
			"internal/parallel",
			"internal/stats",
			"internal/anonymize",
			"internal/bgp",
			"internal/slaac",
			"internal/hitlist",
			"internal/reputation",
			"internal/rir",
			"internal/netutil",
			"internal/rtrie",
			"internal/bng",
			"internal/bng/stripe",
			"internal/sketch",
		},
		SpawnPackages: []string{
			"internal/parallel",
		},
		HotPackages: []string{
			"internal/rtrie",
			"internal/cdn/stream",
			"internal/bng/stripe",
			"internal/sketch",
		},
	}
}

// IsSimPackage reports whether the import path is one of the configured
// simulation/analysis packages.
func (c Config) IsSimPackage(importPath string) bool {
	return matchPackage(c.SimPackages, importPath)
}

func (c Config) isSpawnPackage(importPath string) bool {
	return matchPackage(c.SpawnPackages, importPath)
}

func (c Config) isHotPackage(importPath string) bool {
	return matchPackage(c.HotPackages, importPath)
}

func matchPackage(suffixes []string, importPath string) bool {
	for _, s := range suffixes {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, addressable as file:line.
type Diagnostic struct {
	Path    string `json:"path"` // relative to the module root
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the diagnostic in the canonical "file:line: [rule] message"
// form consumed by editors and CI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Path, d.Line, d.Rule, d.Message)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Cfg  Config

	diags *[]Diagnostic
	root  string
}

// Reportf records a diagnostic at pos under the given rule.
func (p *Pass) Reportf(rule string, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	path := position.Filename
	if rel, ok := relPath(p.root, path); ok {
		path = rel
	}
	*p.diags = append(*p.diags, Diagnostic{
		Path:    path,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

func relPath(root, path string) (string, bool) {
	if root == "" {
		return path, false
	}
	prefix := root
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	if rest, ok := strings.CutPrefix(path, prefix); ok {
		return rest, true
	}
	return path, false
}

// Analyzer is one named rule set.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full dynalint suite in stable order: the four
// syntactic v1 rules followed by the dataflow-aware v2 rules.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NetipAnalyzer,
		ErrwrapAnalyzer,
		LockcopyAnalyzer,
		MaporderAnalyzer,
		GoroutinesAnalyzer,
		HotallocAnalyzer,
		LockscopeAnalyzer,
	}
}

// AnalyzerNames returns the names of all analyzers in the suite.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run executes the selected analyzers over every package of the module and
// returns the surviving (non-suppressed) diagnostics sorted by position.
func Run(mod *Module, cfg Config, analyzers []*Analyzer) []Diagnostic {
	selected := analyzers
	if len(cfg.Rules) > 0 {
		keep := make(map[string]bool, len(cfg.Rules))
		for _, r := range cfg.Rules {
			keep[r] = true
		}
		selected = nil
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
			}
		}
	}
	var diags []Diagnostic
	sup := newSuppressions(mod)
	// Malformed directives are findings themselves: a typo'd suppression
	// silently un-suppresses, so surface it.
	diags = append(diags, sup.malformed...)
	for _, pkg := range mod.Pkgs {
		pass := &Pass{Fset: mod.Fset, Pkg: pkg, Cfg: cfg, diags: &diags, root: mod.Root}
		for _, a := range selected {
			a.Run(pass)
		}
	}
	diags = sup.filter(diags)
	// A suppression that suppresses nothing is itself a finding: stale
	// directives are how an allowlist rots as rules tighten. Only judged
	// when the directive's rule actually ran this invocation.
	selectedNames := make(map[string]bool, len(selected))
	for _, a := range selected {
		selectedNames[a.Name] = true
	}
	knownNames := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		knownNames[a.Name] = true
	}
	diags = append(diags, sup.unused(selectedNames, knownNames, len(selected) == len(analyzers))...)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Path != diags[j].Path {
			return diags[i].Path < diags[j].Path
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags
}

// suppressions indexes //lint:ignore directives. A directive written as
//
//	//lint:ignore <rule> <reason>
//
// suppresses diagnostics of <rule> on the directive's own line and on the
// line directly below it (so it works both as a trailing comment and as a
// standalone comment above the offending statement). Each directive tracks
// whether it suppressed anything: an unused directive is reported.
type directive struct {
	path string
	line int
	col  int
	rule string
	used bool
}

type suppressions struct {
	byFile    map[string]map[int][]*directive // path -> covered line -> directives
	list      []*directive                    // in file/position order
	malformed []Diagnostic
}

func newSuppressions(mod *Module) *suppressions {
	s := &suppressions{byFile: make(map[string]map[int][]*directive)}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					s.add(mod, c)
				}
			}
		}
	}
	return s
}

func (s *suppressions) add(mod *Module, c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
	if !ok {
		return
	}
	pos := mod.Fset.Position(c.Pos())
	path := pos.Filename
	if rel, ok := relPath(mod.Root, path); ok {
		path = rel
	}
	fields := strings.Fields(text)
	if len(fields) < 2 {
		s.malformed = append(s.malformed, Diagnostic{
			Path: path, Line: pos.Line, Col: pos.Column, Rule: "directive",
			Message: "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\"",
		})
		return
	}
	d := &directive{path: path, line: pos.Line, col: pos.Column, rule: fields[0]}
	s.list = append(s.list, d)
	lines := s.byFile[path]
	if lines == nil {
		lines = make(map[int][]*directive)
		s.byFile[path] = lines
	}
	for _, ln := range []int{pos.Line, pos.Line + 1} {
		lines[ln] = append(lines[ln], d)
	}
}

func (s *suppressions) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		suppressed := false
		if d.Rule != "directive" {
			for _, dir := range s.byFile[d.Path][d.Line] {
				if dir.rule == d.Rule || dir.rule == "all" {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// unused reports every directive that suppressed nothing. selected names
// the analyzers that ran: a directive for a rule that did not run is not
// judged (it may be live under the full suite), blanket "all" directives
// are judged only on full-suite runs, and a rule name outside the known
// suite is always a finding — a typo'd directive silently un-suppresses.
func (s *suppressions) unused(selected, known map[string]bool, fullSuite bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.list {
		if d.used {
			continue
		}
		switch {
		case d.rule == "all":
			if !fullSuite {
				continue
			}
		case !known[d.rule]:
			out = append(out, Diagnostic{
				Path: d.path, Line: d.line, Col: d.col, Rule: "directive",
				Message: fmt.Sprintf("//lint:ignore %s names no analyzer; fix the rule name (have all, %s)", d.rule, strings.Join(AnalyzerNames(), ", ")),
			})
			continue
		case !selected[d.rule]:
			continue
		}
		out = append(out, Diagnostic{
			Path: d.path, Line: d.line, Col: d.col, Rule: "directive",
			Message: fmt.Sprintf("//lint:ignore %s suppresses nothing; remove the stale directive or fix the rule name", d.rule),
		})
	}
	return out
}
