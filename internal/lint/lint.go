// Package lint is dynalint's analyzer engine: a stdlib-only static-analysis
// suite (go/ast + go/types) enforcing the repo's determinism, netip-hygiene,
// error-wrapping, and lock-discipline invariants. See README.md "Static
// analysis & determinism conventions" for the rule catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Config selects which packages each repo-specific rule applies to.
type Config struct {
	// SimPackages lists import-path suffixes of the simulation/analysis
	// packages where determinism rules (no wall clock, no global RNG) and
	// the exported-API netip rules are enforced. An entry matches a
	// package whose import path equals it or ends with "/"+entry.
	SimPackages []string
	// Rules restricts which analyzers run; empty means all.
	Rules []string
}

// DefaultConfig is the repository configuration: the packages that form the
// deterministic simulation and analysis core.
func DefaultConfig() Config {
	return Config{
		SimPackages: []string{
			"internal/isp",
			"internal/atlas",
			"internal/cdn",
			"internal/core",
			"internal/dhcp4",
			"internal/dhcp6",
			"internal/faultnet",
			"internal/radius",
			"internal/cgnat",
			"internal/checkpoint",
			"internal/experiments",
			"internal/obs",
			"internal/parallel",
		},
	}
}

// IsSimPackage reports whether the import path is one of the configured
// simulation/analysis packages.
func (c Config) IsSimPackage(importPath string) bool {
	for _, s := range c.SimPackages {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, addressable as file:line.
type Diagnostic struct {
	Path    string `json:"path"` // relative to the module root
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the diagnostic in the canonical "file:line: [rule] message"
// form consumed by editors and CI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Path, d.Line, d.Rule, d.Message)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Cfg  Config

	diags *[]Diagnostic
	root  string
}

// Reportf records a diagnostic at pos under the given rule.
func (p *Pass) Reportf(rule string, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	path := position.Filename
	if rel, ok := relPath(p.root, path); ok {
		path = rel
	}
	*p.diags = append(*p.diags, Diagnostic{
		Path:    path,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

func relPath(root, path string) (string, bool) {
	if root == "" {
		return path, false
	}
	prefix := root
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	if rest, ok := strings.CutPrefix(path, prefix); ok {
		return rest, true
	}
	return path, false
}

// Analyzer is one named rule set.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full dynalint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NetipAnalyzer,
		ErrwrapAnalyzer,
		LockcopyAnalyzer,
	}
}

// AnalyzerNames returns the names of all analyzers in the suite.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run executes the selected analyzers over every package of the module and
// returns the surviving (non-suppressed) diagnostics sorted by position.
func Run(mod *Module, cfg Config, analyzers []*Analyzer) []Diagnostic {
	selected := analyzers
	if len(cfg.Rules) > 0 {
		keep := make(map[string]bool, len(cfg.Rules))
		for _, r := range cfg.Rules {
			keep[r] = true
		}
		selected = nil
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
			}
		}
	}
	var diags []Diagnostic
	sup := newSuppressions(mod)
	// Malformed directives are findings themselves: a typo'd suppression
	// silently un-suppresses, so surface it.
	diags = append(diags, sup.malformed...)
	for _, pkg := range mod.Pkgs {
		pass := &Pass{Fset: mod.Fset, Pkg: pkg, Cfg: cfg, diags: &diags, root: mod.Root}
		for _, a := range selected {
			a.Run(pass)
		}
	}
	diags = sup.filter(diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Path != diags[j].Path {
			return diags[i].Path < diags[j].Path
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags
}

// suppressions indexes //lint:ignore directives. A directive written as
//
//	//lint:ignore <rule> <reason>
//
// suppresses diagnostics of <rule> on the directive's own line and on the
// line directly below it (so it works both as a trailing comment and as a
// standalone comment above the offending statement).
type suppressions struct {
	byFile    map[string]map[int]map[string]bool // path -> line -> rule set
	malformed []Diagnostic
}

func newSuppressions(mod *Module) *suppressions {
	s := &suppressions{byFile: make(map[string]map[int]map[string]bool)}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					s.add(mod, c)
				}
			}
		}
	}
	return s
}

func (s *suppressions) add(mod *Module, c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
	if !ok {
		return
	}
	pos := mod.Fset.Position(c.Pos())
	path := pos.Filename
	if rel, ok := relPath(mod.Root, path); ok {
		path = rel
	}
	fields := strings.Fields(text)
	if len(fields) < 2 {
		s.malformed = append(s.malformed, Diagnostic{
			Path: path, Line: pos.Line, Col: pos.Column, Rule: "directive",
			Message: "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\"",
		})
		return
	}
	rule := fields[0]
	lines := s.byFile[path]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s.byFile[path] = lines
	}
	for _, ln := range []int{pos.Line, pos.Line + 1} {
		if lines[ln] == nil {
			lines[ln] = make(map[string]bool)
		}
		lines[ln][rule] = true
	}
}

func (s *suppressions) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if rules, ok := s.byFile[d.Path][d.Line]; ok && (rules[d.Rule] || rules["all"]) && d.Rule != "directive" {
			continue
		}
		out = append(out, d)
	}
	return out
}
