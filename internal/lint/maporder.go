package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MaporderAnalyzer tracks values flowing out of `for k, v := range m` over a
// map and flags the order-sensitive sinks the byte-identity tests can only
// catch probabilistically:
//
//   - appends (in iteration order) to a slice declared outside the loop that
//     is never sorted later in the same function — the classic "collect then
//     emit" nondeterminism;
//   - direct emission (fmt.Print*/Fprint*, Write*, Reportf-style methods)
//     of iteration-derived values from inside the loop;
//   - selection of a running max/min guarded by a value comparison that
//     never consults the map key — ties resolve by iteration order;
//   - floating-point accumulation (+=, -=, *=, /=) of iteration-derived
//     values — FP addition is not associative, so the sum's low bits depend
//     on iteration order.
//
// Writes keyed by the iteration key itself (m2[k] = v), integer counters,
// and ++/-- are commutative and pass. A slice is "sorted later" when, after
// the loop, it appears in the arguments of any call whose callee name
// contains "sort" (sort.Slice, sort.Strings, slices.SortFunc, local
// sortInts helpers, ...).
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "forbid map-iteration values flowing into appends, writes, emission, " +
		"or order-sensitive selection without an intervening sort",
	Run: runMaporder,
}

func runMaporder(p *Pass) {
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			vf := newValueFlow(p.Pkg.Info, body)
			sorts := collectSortCalls(p.Pkg.Info, body)
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := exprType(p.Pkg.Info, rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(p, vf, sorts, rs)
				return true
			})
		})
	}
}

// sortCall is one call that (by name) sorts something, with the position it
// occurs at — only sorts after the loop absolve an append inside it.
type sortCall struct {
	pos  token.Pos
	objs map[types.Object]bool // objects mentioned in the call's arguments
}

func collectSortCalls(info *types.Info, body ast.Node) []sortCall {
	var out []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		sc := sortCall{pos: call.Pos(), objs: make(map[types.Object]bool)}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := identObj(info, id); obj != nil {
						sc.objs[obj] = true
					}
				}
				return true
			})
		}
		out = append(out, sc)
		return true
	})
	return out
}

// calleeName returns the qualified syntactic name of a call's function:
// "append", "sort.Slice", "sortInts" for a local helper.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	}
	return ""
}

func checkMapRange(p *Pass, vf *valueFlow, sorts []sortCall, rs *ast.RangeStmt) {
	info := p.Pkg.Info
	seeds := rangeVarObjs(info, rs)
	if len(seeds) == 0 {
		return // `for range m {}` uses neither key nor value
	}
	var keyObj types.Object
	if rs.Key != nil {
		if id, ok := ast.Unparen(rs.Key).(*ast.Ident); ok && id.Name != "_" {
			keyObj = identObj(info, id)
		}
	}
	inLoop := func(pos token.Pos) bool {
		return pos >= rs.Pos() && pos <= rs.End()
	}
	sortedAfter := func(obj types.Object) bool {
		for _, sc := range sorts {
			if sc.pos > rs.End() && sc.objs[obj] {
				return true
			}
		}
		return false
	}

	inspectStack(rs.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(p, vf, n, stack, seeds, keyObj, inLoop, sortedAfter)
		case *ast.CallExpr:
			if name, ok := emissionCall(info, n); ok {
				for _, arg := range n.Args {
					if vf.derivesFrom(arg, seeds) {
						p.Reportf("maporder", n.Pos(),
							"%s emits map-iteration values in nondeterministic order; iterate sorted keys instead", name)
						break
					}
				}
			}
		}
		return true
	})
}

func checkMapRangeAssign(p *Pass, vf *valueFlow, n *ast.AssignStmt, stack []ast.Node,
	seeds map[types.Object]bool, keyObj types.Object,
	inLoop func(token.Pos) bool, sortedAfter func(types.Object) bool) {
	info := p.Pkg.Info
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) {
			break
		}
		lhs := n.Lhs[i]

		// Sink 1: out = append(out, <iteration-derived>) with out declared
		// outside the loop and never sorted afterwards.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && calleeName(call) == "append" && len(call.Args) > 1 {
			obj := baseObj(info, lhs)
			if obj == nil || inLoop(obj.Pos()) {
				continue
			}
			tainted := false
			for _, arg := range call.Args[1:] {
				if vf.derivesFrom(arg, seeds) {
					tainted = true
					break
				}
			}
			if tainted && !sortedAfter(obj) {
				p.Reportf("maporder", n.Pos(),
					"append to %s in map-iteration order with no later sort; sort it (or iterate sorted keys) before it reaches output", obj.Name())
			}
			continue
		}

		switch n.Tok {
		case token.ASSIGN:
			// Sink 3: running max/min selection that ignores the key.
			obj := baseObj(info, lhs)
			if obj == nil || inLoop(obj.Pos()) || !vf.derivesFrom(rhs, seeds) {
				continue
			}
			if isIndexWrite(lhs) {
				continue // m2[k] = v keyed by the iteration value is commutative
			}
			if cond := enclosingComparison(stack, inLoop); cond != nil {
				keyBreaksTie := keyObj != nil &&
					vf.derivesFrom(cond, map[types.Object]bool{keyObj: true})
				if !keyBreaksTie {
					p.Reportf("maporder", n.Pos(),
						"map-order-dependent selection: comparison guarding this assignment never consults the map key, so ties resolve by iteration order; add a key tie-break or iterate sorted keys")
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// Sink 4: FP accumulation. Integer accumulation is exact and
			// commutative; floats are not associative.
			obj := baseObj(info, lhs)
			if obj == nil || inLoop(obj.Pos()) || !vf.derivesFrom(rhs, seeds) {
				continue
			}
			if t := exprType(info, lhs); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					p.Reportf("maporder", n.Pos(),
						"floating-point accumulation in map-iteration order; FP addition is not associative — accumulate over sorted keys")
				}
			}
		}
	}
}

// baseObj resolves the left-most identifier of an assignable expression
// (x, x.f, x[i]) to its object.
func baseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return identObj(info, v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func isIndexWrite(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.IndexExpr)
	return ok
}

// enclosingComparison returns the condition of the innermost enclosing if
// statement (within the loop) that contains an ordering comparison, or nil.
func enclosingComparison(stack []ast.Node, inLoop func(token.Pos) bool) ast.Expr {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok || !inLoop(ifs.Pos()) {
			continue
		}
		hasCmp := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if be, ok := n.(*ast.BinaryExpr); ok {
				switch be.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ:
					hasCmp = true
				}
			}
			return !hasCmp
		})
		if hasCmp {
			return ifs.Cond
		}
	}
	return nil
}

// emissionCall reports whether call writes data out in call order: the fmt
// print family, io-style Write* methods, and Reportf/Logf-style sinks.
func emissionCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Append") {
			return "fmt." + name, true
		}
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println", "Reportf", "Logf":
		return name, true
	}
	return "", false
}
