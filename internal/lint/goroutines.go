package lint

import (
	"go/ast"
	"go/types"
)

// GoroutinesAnalyzer enforces the concurrency discipline the simulation
// packages depend on for byte-identical replay:
//
//  1. `go` statements in simulation packages may appear only inside the
//     configured spawn packages (internal/parallel, the index-ordered worker
//     pool) — ad-hoc goroutines are how nondeterminism sneaks past the
//     worker-count invariance tests. A deliberate background goroutine (an
//     HTTP listener joined by Close) carries a //lint:ignore goroutines
//     directive with its justification.
//
//  2. Every spawned goroutine must be joinable or cancellable: its body
//     calls (*sync.WaitGroup).Done (usually deferred), or it threads a
//     context.Context it can be cancelled through. A goroutine with neither
//     outlives its spawner invisibly — the leak class a long-running
//     serve-bng daemon cannot afford.
var GoroutinesAnalyzer = &Analyzer{
	Name: "goroutines",
	Doc: "restrict `go` statements in sim packages to internal/parallel and " +
		"require every goroutine to be WaitGroup-joined or context-cancellable",
	Run: runGoroutines,
}

func runGoroutines(p *Pass) {
	if !p.Cfg.IsSimPackage(p.Pkg.ImportPath) {
		return
	}
	inSpawnPkg := p.Cfg.isSpawnPackage(p.Pkg.ImportPath)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !inSpawnPkg {
				p.Reportf("goroutines", gs.Pos(),
					"go statement in simulation package %s outside the spawn packages; fan out through internal/parallel or justify with //lint:ignore goroutines <reason>",
					p.Pkg.Types.Name())
			}
			if !goroutineJoined(p.Pkg.Info, gs) {
				p.Reportf("goroutines", gs.Pos(),
					"goroutine is neither WaitGroup-joined nor context-cancellable; it can outlive its spawner — join it via sync.WaitGroup/errgroup or thread a context.Context")
			}
			return true
		})
	}
}

// goroutineJoined reports whether the spawned goroutine is observable by its
// spawner: its function-literal body calls a sync.WaitGroup Done/Add pair's
// Done side, or the call (literal body or direct call expression) mentions a
// context.Context value it can be cancelled through.
func goroutineJoined(info *types.Info, gs *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		joined := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if joined {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(info, call); fn != nil && fn.Name() == "Done" {
					if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "sync" {
						joined = true
						return false
					}
				}
			}
			if id, ok := n.(*ast.Ident); ok && isContextIdent(info, id) {
				joined = true
				return false
			}
			return true
		})
		return joined
	}
	// Direct call form (`go srv.Serve(ln)`): cancellable only if a context
	// flows into the call.
	joined := false
	ast.Inspect(gs.Call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && isContextIdent(info, id) {
			joined = true
			return false
		}
		return !joined
	})
	return joined
}

func isContextIdent(info *types.Info, id *ast.Ident) bool {
	obj := identObj(info, id)
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return namedFrom(obj.Type(), "context", "Context")
}
