package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// simCfg marks the fixture package itself as a simulation package so the
// package-gated rules (determinism, exported-API netip) are exercised.
var simCfg = Config{SimPackages: []string{"fixture"}}

// TestFixtures runs the full suite over each golden fixture and compares
// the formatted diagnostics against the fixture's golden.txt. Regenerate
// with LINT_UPDATE=1 go test ./internal/lint.
func TestFixtures(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"determinism", simCfg},
		{"netip", simCfg},
		{"errwrap", simCfg},
		{"lockcopy", simCfg},
		{"ignore", simCfg},
		{"nonsim", Config{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.name)
			mod, err := LoadModule(dir)
			if err != nil {
				t.Fatalf("LoadModule(%s): %v", dir, err)
			}
			diags := Run(mod, tc.cfg, Analyzers())
			var sb strings.Builder
			for _, d := range diags {
				sb.WriteString(d.String())
				sb.WriteString("\n")
			}
			got := sb.String()
			goldenPath := filepath.Join(dir, "golden.txt")
			if os.Getenv("LINT_UPDATE") == "1" {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden: %v (run with LINT_UPDATE=1 to create)", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestRepoClean asserts dynalint reports nothing on the repository itself:
// the determinism/netip/errwrap/lockcopy invariants hold module-wide.
func TestRepoClean(t *testing.T) {
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule(repo): %v", err)
	}
	diags := Run(mod, DefaultConfig(), Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestRuleSelection verifies cfg.Rules restricts which analyzers run.
func TestRuleSelection(t *testing.T) {
	dir := filepath.Join("testdata", "src", "determinism")
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simCfg
	cfg.Rules = []string{"errwrap"}
	if diags := Run(mod, cfg, Analyzers()); len(diags) != 0 {
		t.Errorf("errwrap-only run over determinism fixture found %v", diags)
	}
	cfg.Rules = []string{"determinism"}
	if diags := Run(mod, cfg, Analyzers()); len(diags) == 0 {
		t.Error("determinism-only run found nothing")
	}
}

func TestIsSimPackage(t *testing.T) {
	cfg := DefaultConfig()
	for _, p := range []string{"dynamips/internal/dhcp4", "dynamips/internal/atlas"} {
		if !cfg.IsSimPackage(p) {
			t.Errorf("IsSimPackage(%q) = false", p)
		}
	}
	for _, p := range []string{"dynamips/internal/netutil", "dynamips/internal/lint", "dynamips"} {
		if cfg.IsSimPackage(p) {
			t.Errorf("IsSimPackage(%q) = true", p)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Path: "internal/x/y.go", Line: 12, Col: 3, Rule: "netip", Message: "msg"}
	if got, want := d.String(), "internal/x/y.go:12: [netip] msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
