package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// simCfg marks the fixture package itself as a simulation package so the
// package-gated rules (determinism, exported-API netip) are exercised.
var simCfg = Config{SimPackages: []string{"fixture"}}

// TestFixtures runs the full suite over each golden fixture and compares
// the formatted diagnostics against the fixture's golden.txt. Regenerate
// with LINT_UPDATE=1 go test ./internal/lint.
func TestFixtures(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"determinism", simCfg},
		{"netip", simCfg},
		{"errwrap", simCfg},
		{"lockcopy", simCfg},
		{"ignore", simCfg},
		{"nonsim", Config{}},
		{"maporder", simCfg},
		{"goroutines", simCfg},
		{"spawnpkg", Config{SimPackages: []string{"fixture"}, SpawnPackages: []string{"fixture"}}},
		{"hotalloc", simCfg},
		{"lockscope", simCfg},
		{"unusedignore", simCfg},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.name)
			mod, err := LoadModule(dir)
			if err != nil {
				t.Fatalf("LoadModule(%s): %v", dir, err)
			}
			diags := Run(mod, tc.cfg, Analyzers())
			var sb strings.Builder
			for _, d := range diags {
				sb.WriteString(d.String())
				sb.WriteString("\n")
			}
			got := sb.String()
			goldenPath := filepath.Join(dir, "golden.txt")
			if os.Getenv("LINT_UPDATE") == "1" {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden: %v (run with LINT_UPDATE=1 to create)", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestRepoClean asserts dynalint reports nothing on the repository itself:
// the determinism/netip/errwrap/lockcopy invariants hold module-wide.
func TestRepoClean(t *testing.T) {
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule(repo): %v", err)
	}
	diags := Run(mod, DefaultConfig(), Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestRuleSelection verifies cfg.Rules restricts which analyzers run.
func TestRuleSelection(t *testing.T) {
	dir := filepath.Join("testdata", "src", "determinism")
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simCfg
	cfg.Rules = []string{"errwrap"}
	if diags := Run(mod, cfg, Analyzers()); len(diags) != 0 {
		t.Errorf("errwrap-only run over determinism fixture found %v", diags)
	}
	cfg.Rules = []string{"determinism"}
	if diags := Run(mod, cfg, Analyzers()); len(diags) == 0 {
		t.Error("determinism-only run found nothing")
	}
}

func TestIsSimPackage(t *testing.T) {
	cfg := DefaultConfig()
	for _, p := range []string{"dynamips/internal/dhcp4", "dynamips/internal/atlas",
		"dynamips/internal/netutil", "dynamips/internal/stats", "dynamips/internal/obs"} {
		if !cfg.IsSimPackage(p) {
			t.Errorf("IsSimPackage(%q) = false", p)
		}
	}
	for _, p := range []string{"dynamips/internal/lint", "dynamips"} {
		if cfg.IsSimPackage(p) {
			t.Errorf("IsSimPackage(%q) = true", p)
		}
	}
}

func TestApplyBaseline(t *testing.T) {
	d := func(path, rule, msg string, line int) Diagnostic {
		return Diagnostic{Path: path, Line: line, Rule: rule, Message: msg}
	}
	diags := []Diagnostic{
		d("a.go", "maporder", "m1", 10),
		d("a.go", "maporder", "m1", 20), // duplicate message, second occurrence
		d("b.go", "hotalloc", "m2", 5),
	}
	base := []Diagnostic{
		d("a.go", "maporder", "m1", 99), // line drift must not matter
		d("c.go", "lockscope", "gone", 1),
	}
	kept, stale := ApplyBaseline(diags, base)
	if len(kept) != 2 {
		t.Fatalf("kept = %v, want the unmatched duplicate and b.go finding", kept)
	}
	if kept[0].Line != 20 || kept[1].Path != "b.go" {
		t.Errorf("kept = %v", kept)
	}
	if len(stale) != 1 || stale[0].Path != "c.go" {
		t.Errorf("stale = %v, want the paid-off c.go entry", stale)
	}
	kept, stale = ApplyBaseline(nil, nil)
	if len(kept) != 0 || len(stale) != 0 {
		t.Errorf("empty baseline over no findings: kept %v stale %v", kept, stale)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Path: "internal/x/y.go", Line: 12, Col: 3, Rule: "netip", Message: "msg"}
	if got, want := d.String(), "internal/x/y.go:12: [netip] msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
