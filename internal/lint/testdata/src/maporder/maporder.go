// Package fixture exercises the maporder dataflow analyzer: map-iteration
// values flowing into order-sensitive sinks.
package fixture

import (
	"fmt"
	"sort"
)

// CollectUnsorted appends map values in iteration order and never sorts:
// the classic collect-then-emit nondeterminism.
func CollectUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// CollectSorted is the fix: the append is absolved by the later sort.
func CollectSorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// CollectKeysSortFunc shows a local sort helper also absolves.
func CollectKeysSortFunc(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) { sort.Strings(s) }

// EmitInLoop prints iteration values directly: output order is
// nondeterministic even though nothing is collected.
func EmitInLoop(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// TieByIterationOrder selects a running max guarded only by the value
// comparison: ties resolve by iteration order.
func TieByIterationOrder(m map[int]float64) int {
	best, bestW := -1, -1.0
	for k, w := range m {
		if w > bestW {
			bestW = w
			best = k
		}
	}
	return best
}

// TieByKey is the fix: the comparison consults the key, so ties are
// deterministic.
func TieByKey(m map[int]float64) int {
	best, bestW := -1, -1.0
	for k, w := range m {
		if w > bestW || (w == bestW && k < best) {
			bestW = w
			best = k
		}
	}
	return best
}

// FloatAccumulate sums floats in iteration order: FP addition is not
// associative, so the low bits depend on the order.
func FloatAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, w := range m {
		sum += w
	}
	return sum
}

// IntAccumulate is exact and commutative: clean.
func IntAccumulate(m map[string]int) int {
	var n int
	for _, c := range m {
		n += c
	}
	return n
}

// KeyedWrite copies into another map keyed by the iteration key: the write
// order is invisible, so this is commutative and clean.
func KeyedWrite(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Suppressed documents a deliberately order-insensitive emission.
func Suppressed(m map[string]int) {
	for k := range m {
		//lint:ignore maporder progress logging; order is cosmetic here
		fmt.Println(k)
	}
}
