// Package fixture exercises the determinism analyzer: wall-clock reads and
// global RNG draws are flagged, seeded generators and socket deadlines pass.
package fixture

import (
	"math/rand"
	mrand2 "math/rand/v2"
	"net"
	"time"
)

func BadWallClock() int64 {
	return time.Now().Unix()
}

func BadGlobalRand() int {
	n := rand.Intn(10)
	n += int(mrand2.Int64N(5))
	rand.Shuffle(3, func(i, j int) {})
	return n
}

func GoodDeadline(conn net.Conn) error {
	return conn.SetReadDeadline(time.Now().Add(2 * time.Second))
}

func GoodSeeded() int {
	r := rand.New(rand.NewSource(42))
	r2 := mrand2.New(mrand2.NewPCG(1, 2))
	return r.Intn(10) + int(r2.Int64N(5))
}

func Suppressed() int64 {
	//lint:ignore determinism wall clock feeds a log line, not simulation state
	return time.Now().Unix()
}
