// Package fixture exercises the lockscope analyzer: mis-scoped deferred
// unlocks and lock acquisitions that leak past a return.
package fixture

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

// DeferInLoop defers the unlock inside the loop: it runs at function exit,
// so iteration two deadlocks.
func (s *S) DeferInLoop(xs []int) {
	for range xs {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.n++
	}
}

// LeakOnReturn returns on the early path with the mutex still held.
func (s *S) LeakOnReturn(cond bool) {
	s.mu.Lock()
	if cond {
		return
	}
	s.mu.Unlock()
}

// FallsOffEnd never unlocks at all: falling off the end is a return too.
func (s *S) FallsOffEnd() {
	s.mu.Lock()
	s.n++
}

// LockEachIteration acquires inside the loop body without releasing by the
// end of the iteration.
func (s *S) LockEachIteration(xs []int) {
	for range xs {
		s.mu.Lock()
		s.n++
	}
}

// DeferOK is the canonical clean shape.
func (s *S) DeferOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// BothPaths unlocks explicitly on every path: clean.
func (s *S) BothPaths(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// PerIteration scopes the lock to one iteration: clean.
func (s *S) PerIteration(xs []int) {
	for range xs {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

type R struct {
	mu sync.RWMutex
	n  int
}

// ReadLeak leaks an RLock past the return.
func (r *R) ReadLeak() int {
	r.mu.RLock()
	return r.n
}

// Suppressed hands the lock to the caller deliberately.
func (s *S) Suppressed(cond bool) {
	s.mu.Lock()
	if cond {
		//lint:ignore lockscope lock handed to caller; released by Done()
		return
	}
	s.mu.Unlock()
}
