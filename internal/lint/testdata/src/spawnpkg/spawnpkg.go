// Package fixture exercises the goroutines analyzer inside a configured
// spawn package: go statements are allowed here, but the join rule still
// applies.
package fixture

import "sync"

func work() {}

// Pool is the sanctioned worker-pool shape: spawned here, WaitGroup-joined.
func Pool(wg *sync.WaitGroup, n int) {
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
}

// Unjoined is in the right package but still leaks: the join rule fires.
func Unjoined() {
	go work()
}
