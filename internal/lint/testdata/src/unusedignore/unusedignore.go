// Package fixture exercises stale-suppression detection: a //lint:ignore
// that suppresses nothing is itself a finding.
package fixture

import "time"

// Used carries a live suppression: no finding for the directive.
func Used() int64 {
	//lint:ignore determinism fixture needs a real timestamp here
	return time.Now().Unix()
}

// Stale suppresses a rule that finds nothing on the covered lines.
func Stale() int {
	//lint:ignore determinism nothing below touches the wall clock
	return 1
}

// WrongName typo'd the rule: it names no analyzer at all.
func WrongName() int64 {
	//lint:ignore determinsim misspelled rule never matches
	return time.Now().Unix()
}

// StaleBlanket is an "all" directive covering a clean line.
func StaleBlanket() int {
	//lint:ignore all blanket suppression with nothing to suppress
	return 2
}
