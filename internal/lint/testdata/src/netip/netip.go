// Package fixture exercises the netip hygiene analyzer.
package fixture

import (
	"net"
	"net/netip"
	"sort"
)

func BadLess(a, b netip.Addr) bool {
	return a.String() < b.String()
}

func BadEqual(a, b netip.Prefix) bool {
	return a.String() == b.String()
}

func BadSort(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].String() < ps[j].String() })
}

func BadKey(m map[string]int, a netip.Addr) int {
	return m[a.String()]
}

func GoodCompare(a, b netip.Addr, m map[netip.Addr]int) bool {
	if a == b {
		return true
	}
	_ = m[a]
	return a.Compare(b) < 0
}

// GoodStringUse formats an address for output, which is fine: only
// comparisons and map keys through String() are flagged.
func GoodStringUse(a netip.Addr) string {
	return "addr=" + a.String()
}

// BadAPI takes net.IP in an exported signature of an analysis package.
func BadAPI(ip net.IP) {}

// BadStruct exposes net.IP through an exported field.
type BadStruct struct {
	IP net.IP
}

// BadMethod returns net.IP values from an exported method.
func (BadStruct) BadMethod() []net.IP { return nil }

func goodUnexported(ip net.IP) { _ = ip }
