// Package fixture exercises the hotalloc analyzer: per-record allocations
// in functions opted in with //lint:hotpath. Unmarked functions are free to
// allocate.
package fixture

import "fmt"

// Key converts per-record bytes to a string: one allocation per record.
//
//lint:hotpath per-record key builder
func Key(b []byte) string {
	return string(b)
}

// Lookup uses the compiler-optimized m[string(b)] map-read form: clean.
//
//lint:hotpath per-record lookup
func Lookup(m map[string]int, b []byte) int {
	return m[string(b)]
}

// Store writes through a converted key: the write materializes the string.
//
//lint:hotpath per-record store
func Store(m map[string]int, b []byte, v int) {
	m[string(b)] = v
}

// Format calls fmt on the hot path: allocates its result and boxes args.
//
//lint:hotpath per-record formatting
func Format(v int) string {
	return fmt.Sprintf("%d", v)
}

// Accumulate builds a closure capturing a local: each call allocates it.
//
//lint:hotpath per-record reduction
func Accumulate(xs []int) int {
	total := 0
	add := func(x int) { total += x }
	for _, x := range xs {
		add(x)
	}
	return total
}

// Box passes, assigns, and returns concrete values as interfaces.
//
//lint:hotpath per-record sink
func Box(v int) any {
	consume(v)
	var x any
	x = v
	_ = x
	return v
}

func consume(x any) {}

// PointerShaped passes pointer-shaped and constant values: no allocation,
// clean.
//
//lint:hotpath per-record sink
func PointerShaped(v int) {
	consume(nil)
	consume(42)
	consume(&v)
}

// Guard allocates only on the dying path: panic arguments are exempt.
//
//lint:hotpath per-record guard
func Guard(v int) {
	if v < 0 {
		panic(fmt.Sprintf("negative record %d", v))
	}
}

// Cold is unmarked: the same allocations pass without comment.
func Cold(b []byte) string {
	return fmt.Sprintf("%s", string(b))
}

// Suppressed documents a deliberate one-time allocation.
//
//lint:hotpath demonstrates suppression
func Suppressed(v int) string {
	//lint:ignore hotalloc error path only; never hit per record
	return fmt.Sprint(v)
}
