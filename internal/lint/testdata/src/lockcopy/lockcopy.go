// Package fixture exercises the lockcopy analyzer.
package fixture

import "sync"

// Counter holds a mutex, so values must never be copied.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Nested embeds a lock transitively.
type Nested struct {
	c Counter
}

func BadParam(c Counter) {}

func BadNestedParam(n Nested) {}

func BadResult() Counter {
	return Counter{}
}

func (c Counter) BadRecv() {}

func BadAssign(c *Counter) {
	cp := *c
	_ = cp
}

func BadRange(cs []Counter) {
	for _, c := range cs {
		_ = c
	}
}

func GoodPointer(c *Counter) *Counter {
	return c
}

func GoodIndexRange(cs []Counter) {
	for i := range cs {
		cs[i].mu.Lock()
		cs[i].mu.Unlock()
	}
}

func GoodFresh() *Counter {
	c := Counter{} // composite literal: a fresh value, not a copy
	return &c
}
