// Package fixture shows the package-gated rules: outside the configured
// simulation packages, wall clocks, global RNGs, and net.IP APIs pass, while
// netip comparison hygiene and error wrapping still apply module-wide.
package fixture

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"time"
)

var errBase = errors.New("base")

func OKWallClock() int64 {
	return time.Now().Unix() + int64(rand.Intn(3))
}

func OKNetIPAPI(ip net.IP) {}

func StillBadCompare(a, b netip.Addr) bool {
	return a.String() < b.String()
}

func StillBadWrap() error {
	return fmt.Errorf("context: %v", errBase)
}
