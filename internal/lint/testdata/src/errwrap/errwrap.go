// Package fixture exercises the errwrap analyzer.
package fixture

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func BadVerb() error {
	return fmt.Errorf("context: %v", errBase)
}

func BadString() error {
	return fmt.Errorf("context: %s", errBase)
}

func GoodWrap() error {
	return fmt.Errorf("context: %w", errBase)
}

func GoodNoError() error {
	return fmt.Errorf("code %d: %s", 7, errBase.Error())
}

func Suppressed() error {
	//lint:ignore errwrap message deliberately flattens the chain
	return fmt.Errorf("context: %v", errBase)
}
