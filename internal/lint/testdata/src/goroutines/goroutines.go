// Package fixture exercises the goroutines discipline analyzer in a
// simulation package that is NOT a spawn package: every go statement is
// misplaced, and unjoined goroutines are flagged a second time.
package fixture

import (
	"context"
	"sync"
)

func work() {}

// Leak spawns a bare goroutine: wrong place AND unjoinable.
func Leak() {
	go work()
}

// Joined is WaitGroup-joined, so only the location rule fires.
func Joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// Cancellable threads a context, so only the location rule fires.
func Cancellable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// DirectCancellable passes the context into a direct call.
func DirectCancellable(ctx context.Context) {
	go serve(ctx)
}

func serve(ctx context.Context) { <-ctx.Done() }

// Suppressed is a justified background goroutine.
func Suppressed() {
	//lint:ignore goroutines background listener joined by Close in tests
	go work()
}
