// Package fixture exercises //lint:ignore suppression behavior.
package fixture

import "time"

func SameLine() int64 {
	return time.Now().Unix() //lint:ignore determinism trailing suppression
}

func LineAbove() int64 {
	//lint:ignore determinism standalone suppression above the statement
	return time.Now().Unix()
}

func Blanket() int64 {
	//lint:ignore all blanket suppression covers every rule
	return time.Now().Unix()
}

func WrongRule() int64 {
	//lint:ignore netip suppressing the wrong rule leaves the finding live
	return time.Now().Unix()
}

func Malformed() int64 {
	//lint:ignore determinism
	return time.Now().Unix()
}
