package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module under analysis. Only
// non-test sources are loaded: dynalint enforces invariants on production
// code, while tests are free to use wall clocks and ad-hoc randomness.
type Package struct {
	Dir        string // absolute directory
	ImportPath string
	Name       string
	Filenames  []string // absolute, parallel to Files
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Module is a loaded, type-checked module: every package found under Root,
// in dependency (topological) order.
type Module struct {
	Root string // absolute module root
	Path string // module path from go.mod ("fixture" when absent)
	Fset *token.FileSet
	Pkgs []*Package
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(importPath string) *Package {
	for _, p := range m.Pkgs {
		if p.ImportPath == importPath {
			return p
		}
	}
	return nil
}

// LoadModule parses and type-checks every package rooted at dir (a module
// root containing go.mod, or a bare fixture tree). Directories named
// testdata, hidden directories, and _test.go files are skipped. Standard
// library imports are resolved through the toolchain importer; module-
// internal imports are resolved against the packages being loaded.
func LoadModule(dir string) (*Module, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath := modulePath(root)
	fset := token.NewFileSet()

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	// Parse every package first so the import graph is known before
	// type-checking begins.
	byPath := make(map[string]*Package)
	for _, d := range dirs {
		pkg, err := parseDir(fset, root, modPath, d)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		byPath[pkg.ImportPath] = pkg
	}

	order, err := topoOrder(byPath, modPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		std:  importer.Default(),
		pkgs: make(map[string]*types.Package),
	}
	for _, pkg := range order {
		if err := typeCheck(fset, pkg, imp); err != nil {
			return nil, fmt.Errorf("%s: %w", pkg.ImportPath, err)
		}
		imp.pkgs[pkg.ImportPath] = pkg.Types
	}
	return &Module{Root: root, Path: modPath, Fset: fset, Pkgs: order}, nil
}

// modulePath reads the module path from go.mod under root, defaulting to
// "fixture" for bare trees (the lint test fixtures have no go.mod).
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "fixture"
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return "fixture"
}

// packageDirs walks root collecting directories that may hold a package.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		pkg.ImportPath = modPath
	} else {
		pkg.ImportPath = modPath + "/" + filepath.ToSlash(rel)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		if f.Name.Name != pkg.Name {
			return nil, fmt.Errorf("%s: mixed package names %q and %q", dir, pkg.Name, f.Name.Name)
		}
		pkg.Filenames = append(pkg.Filenames, full)
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// imports lists the import paths of pkg that live inside the module.
func moduleImports(pkg *Package, modPath string) []string {
	var out []string
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if p == modPath || strings.HasPrefix(p, modPath+"/") {
				out = append(out, p)
			}
		}
	}
	return out
}

// topoOrder sorts packages so every module-internal dependency precedes its
// importers.
func topoOrder(byPath map[string]*Package, modPath string) ([]*Package, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		pkg, ok := byPath[path]
		if !ok {
			return nil // import of a module path not under the loaded root
		}
		switch color[path] {
		case gray:
			return fmt.Errorf("import cycle through %s", path)
		case black:
			return nil
		}
		color[path] = gray
		for _, dep := range moduleImports(pkg, modPath) {
			if dep == path {
				continue
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		color[path] = black
		order = append(order, pkg)
		return nil
	}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the packages loaded
// so far and everything else through the toolchain importer.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	conf := types.Config{
		Importer: imp,
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(pkg.ImportPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return err
	}
	pkg.Types = tpkg
	return nil
}
