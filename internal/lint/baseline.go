package lint

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline support for incremental adoption: when a new analyzer lands with
// pre-existing findings, the findings are recorded once (dynalint
// -write-baseline) and subsequent runs report only NEW findings. Entries
// match on (Path, Rule, Message) — line numbers drift with every edit, so
// they are deliberately ignored. Each baseline entry absorbs at most one
// finding: two identical findings need two entries.

// ReadBaseline loads a baseline file (a JSON array of Diagnostics, as
// written by dynalint -json or -write-baseline).
func ReadBaseline(path string) ([]Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base []Diagnostic
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return base, nil
}

// ApplyBaseline splits diags into the findings not covered by the baseline
// (kept — these should fail the run) and the baseline entries that matched
// nothing (stale — the debt was paid; shrink the baseline).
func ApplyBaseline(diags, baseline []Diagnostic) (kept, stale []Diagnostic) {
	avail := make(map[string]int, len(baseline))
	for _, b := range baseline {
		avail[baselineKey(b)]++
	}
	for _, d := range diags {
		k := baselineKey(d)
		if avail[k] > 0 {
			avail[k]--
			continue
		}
		kept = append(kept, d)
	}
	for _, b := range baseline {
		k := baselineKey(b)
		if avail[k] > 0 {
			avail[k]--
			stale = append(stale, b)
		}
	}
	return kept, stale
}

func baselineKey(d Diagnostic) string {
	return d.Path + "\x00" + d.Rule + "\x00" + d.Message
}
