package lint

import (
	"go/ast"
	"go/types"
)

// valueFlow is a small intra-procedural value-flow index over one function
// body, shared by the dataflow analyzers (maporder, hotalloc). It records,
// for every local object, the right-hand sides assigned to it, and answers
// "can this expression carry a value derived from one of these seeds?" by
// chasing assignments transitively.
//
// The walker is deliberately flow-insensitive (it ignores statement order
// and conditions): it over-approximates reachability, which is the right
// bias for determinism lints — a value that *may* derive from map iteration
// is already enough to make the output order suspect.
type valueFlow struct {
	info *types.Info
	defs map[types.Object][]ast.Expr
}

// newValueFlow indexes every assignment, short variable declaration, var
// spec, and range binding inside body.
func newValueFlow(info *types.Info, body ast.Node) *valueFlow {
	vf := &valueFlow{info: info, defs: make(map[types.Object][]ast.Expr)}
	if body == nil {
		return vf
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					vf.record(n.Lhs[i], n.Rhs[i])
				}
			} else if len(n.Rhs) == 1 {
				// Multi-value call / comma-ok: every LHS derives from the
				// single RHS.
				for _, lhs := range n.Lhs {
					vf.record(lhs, n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					vf.record(name, n.Values[i])
				}
			} else if len(n.Values) == 1 {
				for _, name := range n.Names {
					vf.record(name, n.Values[0])
				}
			}
		case *ast.RangeStmt:
			// k, v := range x: both loop variables derive from x.
			if n.Key != nil {
				vf.record(n.Key, n.X)
			}
			if n.Value != nil {
				vf.record(n.Value, n.X)
			}
		}
		return true
	})
	return vf
}

func (vf *valueFlow) record(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := identObj(vf.info, id)
	if obj == nil {
		return
	}
	vf.defs[obj] = append(vf.defs[obj], rhs)
}

// derivesFrom reports whether e can carry a value derived from any object in
// seeds, chasing the recorded assignments transitively.
func (vf *valueFlow) derivesFrom(e ast.Expr, seeds map[types.Object]bool) bool {
	if e == nil || len(seeds) == 0 {
		return false
	}
	return vf.derives(e, seeds, make(map[types.Object]bool))
}

func (vf *valueFlow) derives(e ast.Expr, seeds, visiting map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := identObj(vf.info, id)
		if obj == nil {
			return true
		}
		if seeds[obj] {
			found = true
			return false
		}
		if visiting[obj] {
			return true
		}
		visiting[obj] = true
		for _, rhs := range vf.defs[obj] {
			if vf.derives(rhs, seeds, visiting) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// identObj resolves an identifier to its object, whether the ident defines
// it (":=", range clauses) or uses it.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// rangeVarObjs returns the objects bound by a range statement's key and
// value clauses (nil entries are skipped, as are "_" placeholders).
func rangeVarObjs(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	seeds := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if e == nil {
			continue
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(info, id); obj != nil {
				seeds[obj] = true
			}
		}
	}
	return seeds
}

// funcBodies yields every function body in f with its declaring node: all
// FuncDecls plus package-level FuncLits (var initializers). Nested FuncLits
// are visited as part of their enclosing body, not separately, so per-body
// analyses see closures in context.
func funcBodies(f *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd, fd.Body)
		}
	}
}
