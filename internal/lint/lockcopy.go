package lint

import (
	"go/ast"
	"go/types"
)

// LockcopyAnalyzer enforces lock discipline: values whose type (transitively)
// contains a sync primitive must never be copied — not passed or returned by
// value, not bound to a value receiver, not duplicated by assignment, and
// not yielded by value from a range loop. A copied mutex is a distinct
// mutex, and the original's exclusion silently stops covering the copy.
var LockcopyAnalyzer = &Analyzer{
	Name: "lockcopy",
	Doc:  "forbid copying values containing sync.Mutex/RWMutex (and friends)",
	Run:  runLockcopy,
}

func runLockcopy(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, field := range n.Recv.List {
						checkFieldLock(p, field, "method has a value receiver containing a sync lock; use a pointer receiver")
					}
				}
			case *ast.FuncType:
				if n.Params != nil {
					for _, field := range n.Params.List {
						checkFieldLock(p, field, "parameter passes a lock-containing value by value; pass a pointer")
					}
				}
				if n.Results != nil {
					for _, field := range n.Results.List {
						checkFieldLock(p, field, "result returns a lock-containing value by value; return a pointer")
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true // multi-value call/comma-ok: callee results are checked at the FuncType
				}
				for i, rhs := range n.Rhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // discarded, nothing retains the copy
					}
					if copiesExistingValue(rhs) && containsLock(exprType(info, rhs)) {
						p.Reportf("lockcopy", rhs.Pos(),
							"assignment copies a value containing a sync lock; share it through a pointer")
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if id, ok := n.Value.(*ast.Ident); ok && id.Name == "_" {
					return true
				}
				if containsLock(identOrExprType(info, n.Value)) {
					p.Reportf("lockcopy", n.Value.Pos(),
						"range copies lock-containing elements by value; iterate by index or store pointers")
				}
			}
			return true
		})
	}
}

func checkFieldLock(p *Pass, field *ast.Field, msg string) {
	t := exprType(p.Pkg.Info, field.Type)
	if t == nil {
		if tv, ok := p.Pkg.Info.Types[field.Type]; ok {
			t = tv.Type
		}
	}
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsLock(t) {
		p.Reportf("lockcopy", field.Pos(), msg)
	}
}

// identOrExprType resolves the type of a range-clause variable, which for
// ":=" loops lives in Defs rather than Types.
func identOrExprType(info *types.Info, e ast.Expr) types.Type {
	if id, ok := e.(*ast.Ident); ok {
		if obj, ok := info.Defs[id]; ok && obj != nil {
			return obj.Type()
		}
		if obj, ok := info.Uses[id]; ok && obj != nil {
			return obj.Type()
		}
	}
	return exprType(info, e)
}

// copiesExistingValue reports whether e reads an existing variable (as
// opposed to a fresh composite literal, call result, or conversion, whose
// producer is flagged at its own declaration site).
func copiesExistingValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}
