package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotallocAnalyzer flags per-record allocations in hot-path functions: the
// zero-alloc groundwork for streaming 10⁸–10⁹ CDN tuples. A function is hot
// when its package is listed in Config.HotPackages (all of internal/rtrie by
// default) or its doc comment carries a //lint:hotpath marker (the
// internal/netutil keying functions).
//
// Inside a hot function it reports:
//
//   - string<->[]byte/[]rune conversions of parameter-derived data — one
//     allocation per record (the compiler-optimized m[string(b)] map-read
//     form is exempt);
//   - any fmt.* call — formatting allocates its result and boxes every
//     argument;
//   - closures capturing local variables — each call allocates the closure
//     (and often moves the captives to the heap);
//   - interface boxing: concrete non-pointer-shaped values passed to
//     interface parameters, assigned to interface variables, or returned as
//     interface results.
//
// Allocations that only happen on a dying path (arguments to panic) are
// exempt: they are not per-record costs.
var HotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid per-record allocations (string conversions, fmt.*, capturing " +
		"closures, interface boxing) in //lint:hotpath functions and hot packages",
	Run: runHotalloc,
}

// hotpathMarker is the doc-comment directive that opts a single function
// into hotalloc analysis.
const hotpathMarker = "//lint:hotpath"

func runHotalloc(p *Pass) {
	pkgHot := p.Cfg.isHotPackage(p.Pkg.ImportPath)
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			if !pkgHot && !hasHotpathMarker(decl.Doc) {
				return
			}
			checkHotFunc(p, decl, body)
		})
	}
}

func hasHotpathMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, hotpathMarker) {
			return true
		}
	}
	return false
}

func checkHotFunc(p *Pass, decl *ast.FuncDecl, body *ast.BlockStmt) {
	info := p.Pkg.Info
	vf := newValueFlow(info, body)
	params := paramObjs(info, decl)

	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		if insidePanic(stack) {
			return true // dying path, not a per-record cost
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, vf, params, n, stack)
		case *ast.FuncLit:
			if name, ok := capturesLocal(info, decl, n); ok {
				p.Reportf("hotalloc", n.Pos(),
					"closure captures %s; each call of the hot path allocates the closure — hoist it or pass state explicitly", name)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if t := exprType(info, n.Lhs[i]); isInterfaceType(t) && boxes(info, rhs) {
					p.Reportf("hotalloc", rhs.Pos(),
						"assignment boxes a concrete value into interface %s; boxing allocates per record", t.String())
				}
			}
		case *ast.ReturnStmt:
			obj := info.Defs[decl.Name]
			if obj == nil {
				break
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Results().Len() != len(n.Results) {
				break
			}
			for i, res := range n.Results {
				if t := sig.Results().At(i).Type(); isInterfaceType(t) && boxes(info, res) {
					p.Reportf("hotalloc", res.Pos(),
						"return boxes a concrete value into interface %s; boxing allocates per record", t.String())
				}
			}
		}
		return true
	})
}

// checkHotCall flags allocating string conversions, fmt.* calls, and
// interface-boxing arguments.
func checkHotCall(p *Pass, vf *valueFlow, params map[types.Object]bool, call *ast.CallExpr, stack []ast.Node) {
	info := p.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkHotConversion(p, vf, params, call, tv.Type, stack)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return // boxing into a panic argument is a dying path
	}
	if fn := calleeFunc(info, call); fn != nil {
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			p.Reportf("hotalloc", call.Pos(),
				"fmt.%s on a hot path allocates its result and boxes every argument; build output with strconv/append or move formatting off the per-record path", fn.Name())
			return // don't also report each boxed argument
		}
	}
	sig, ok := exprType(info, call.Fun).(*types.Signature)
	if !ok {
		return // builtin or type error
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call)
		if isInterfaceType(pt) && boxes(info, arg) {
			p.Reportf("hotalloc", arg.Pos(),
				"argument boxes a concrete value into interface %s; boxing allocates per record", pt.String())
		}
	}
}

// checkHotConversion flags string <-> []byte/[]rune conversions of
// parameter-derived data, except the compiler-optimized map read
// m[string(b)].
func checkHotConversion(p *Pass, vf *valueFlow, params map[types.Object]bool, call *ast.CallExpr, dst types.Type, stack []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	src := exprType(p.Pkg.Info, call.Args[0])
	if src == nil || !allocatingStringConv(dst, src) {
		return
	}
	// Only parameter-derived data is a per-record cost; converting a
	// package-level constant or table happens on data independent of the
	// record being processed.
	if !vf.derivesFrom(call.Args[0], params) {
		return
	}
	if isMapReadIndex(p.Pkg.Info, call, stack) {
		return
	}
	p.Reportf("hotalloc", call.Pos(),
		"%s conversion of per-record data allocates; keep one representation on the hot path", types.ExprString(call.Fun))
}

// allocatingStringConv reports whether converting src to dst copies the
// underlying bytes: string <-> []byte and string <-> []rune.
func allocatingStringConv(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// isMapReadIndex reports whether call is the index expression of a map READ
// (m[string(b)]), which the compiler performs without allocating. A write
// (m[string(b)] = v) still allocates the key.
func isMapReadIndex(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	idx, ok := stack[len(stack)-1].(*ast.IndexExpr)
	if !ok || idx.Index != call {
		return false
	}
	t := exprType(info, idx.X)
	if t == nil {
		return false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	if len(stack) >= 2 {
		if as, ok := stack[len(stack)-2].(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if ast.Unparen(lhs) == idx {
					return false // map write: the key is materialized
				}
			}
		}
	}
	return true
}

// capturesLocal reports whether lit references a variable local to the
// enclosing function (parameter, receiver, or body local) — the captures
// that force a heap-allocated closure.
func capturesLocal(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	name, found := "", false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := identObj(info, id)
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= decl.Pos() && pos < decl.End() && (pos < lit.Pos() || pos > lit.End()) {
			name, found = v.Name(), true
			return false
		}
		return true
	})
	return name, found
}

// paramObjs collects the objects of decl's receiver and parameters: the
// per-record inputs of a hot function.
func paramObjs(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	collect(decl.Recv)
	if decl.Type != nil {
		collect(decl.Type.Params)
	}
	return out
}

// paramTypeAt returns the static parameter type matched to argument i,
// unrolling variadic tails. A f(xs...) spread call passes the slice itself —
// no boxing — so it returns nil for that form.
func paramTypeAt(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if call.Ellipsis.IsValid() {
			return nil
		}
		s, ok := sig.Params().At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return s.Elem()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether storing e into an interface allocates: true for
// concrete values that are not pointer-shaped (pointers, channels, maps,
// funcs, unsafe.Pointer ride in the interface word) and not compile-time
// constants (the compiler materializes those statically).
func boxes(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// insidePanic reports whether the current node sits inside an argument of
// the panic builtin.
func insidePanic(stack []ast.Node) bool {
	for _, n := range stack {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
