// Package anonymize implements the paper's privacy application (§6):
// aggregating IPv6 addresses for data sharing without identifying
// individual subscribers. Fixed-length truncation (e.g. Google Analytics'
// /48 masking, [21] in the paper) is fallacious — Netcologne delegates
// whole /48s to single households — so policies here are derived
// per-network from the inferred subscriber and pool boundaries.
package anonymize

import (
	"fmt"
	"net/netip"

	"dynamips/internal/core"
	"dynamips/internal/netutil"
	"dynamips/internal/stats"
)

// Policy is a per-AS anonymization rule: truncate addresses in the AS to
// TruncateLen bits.
type Policy struct {
	ASN uint32
	// TruncateLen is the released prefix length.
	TruncateLen int
	// SubscriberLen is the inferred per-subscriber delegation the policy
	// must stay strictly above.
	SubscriberLen int
}

// Anonymize truncates an IPv6 address under the policy.
func (p Policy) Anonymize(a netip.Addr) (netip.Prefix, error) {
	if !a.Is6() || a.Unmap().Is4() {
		return netip.Prefix{}, fmt.Errorf("anonymize: %v is not IPv6", a)
	}
	return netutil.PrefixAt(a, p.TruncateLen), nil
}

// MarginBits is the policy's distance above the subscriber boundary.
func (p Policy) MarginBits() int { return p.SubscriberLen - p.TruncateLen }

// DerivePolicy builds a per-AS policy from analyzed probes: the released
// prefix sits marginBits above the inferred subscriber boundary, and no
// longer than the inferred dynamic pool when one is measurable (pools are
// where subscribers provably aggregate — §5.2).
func DerivePolicy(asn uint32, pas []core.ProbeAnalysis, marginBits int) (Policy, error) {
	if marginBits < 0 {
		return Policy{}, fmt.Errorf("anonymize: negative margin")
	}
	perAS, _ := core.SubscriberLengths(pas)
	h := perAS[asn]
	if h == nil || h.N == 0 {
		return Policy{}, fmt.Errorf("anonymize: no subscriber-boundary inference for AS%d", asn)
	}
	sub := h.ArgMax()
	p := Policy{ASN: asn, SubscriberLen: sub, TruncateLen: sub - marginBits}
	dists := core.UniquePrefixes(pas, nil)
	if d := dists[asn]; d != nil {
		if pool, ok := core.InferPoolBoundary(d, 8); ok && pool < p.TruncateLen {
			p.TruncateLen = pool
		}
	}
	if p.TruncateLen < 16 {
		p.TruncateLen = 16
	}
	return p, nil
}

// Audit measures a policy against a set of concurrently assigned
// subscriber /64s (one per subscriber at a snapshot): it returns how many
// released prefixes cover exactly one subscriber and the total released.
// A sound policy has zero singletons; fixed /48 truncation fails this for
// /48-delegating ISPs.
func Audit(p Policy, snapshot []netip.Prefix) (singletons, released int, err error) {
	counts := make(map[netip.Prefix]int)
	for _, s := range snapshot {
		if !s.Addr().Is6() {
			return 0, 0, fmt.Errorf("anonymize: audit snapshot contains non-IPv6 %v", s)
		}
		counts[netutil.PrefixAt(s.Addr(), p.TruncateLen)]++
	}
	for _, n := range counts {
		if n == 1 {
			singletons++
		}
	}
	return singletons, len(counts), nil
}

// KDistribution returns the distribution of subscribers per released
// prefix — the k in k-anonymity each released prefix provides.
func KDistribution(p Policy, snapshot []netip.Prefix) *stats.ECDF {
	counts := make(map[netip.Prefix]int)
	for _, s := range snapshot {
		counts[netutil.PrefixAt(s.Addr(), p.TruncateLen)]++
	}
	e := &stats.ECDF{}
	for _, n := range counts {
		e.Add(float64(n))
	}
	return e
}
