package anonymize

import (
	"net/netip"
	"testing"

	"dynamips/internal/atlas"
	"dynamips/internal/core"
	"dynamips/internal/isp"
)

func TestPolicyAnonymize(t *testing.T) {
	p := Policy{ASN: 8422, TruncateLen: 40, SubscriberLen: 48}
	got, err := p.Anonymize(netip.MustParseAddr("2001:4dd0:ab:cd00::1"))
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	if got != netip.MustParsePrefix("2001:4dd0::/40") {
		t.Errorf("Anonymize = %v", got)
	}
	if p.MarginBits() != 8 {
		t.Errorf("MarginBits = %d", p.MarginBits())
	}
	if _, err := p.Anonymize(netip.MustParseAddr("10.0.0.1")); err == nil {
		t.Error("IPv4 anonymized")
	}
}

func TestAudit(t *testing.T) {
	p := Policy{TruncateLen: 56, SubscriberLen: 64}
	snapshot := []netip.Prefix{
		netip.MustParsePrefix("2003:0:0:1100::/64"),
		netip.MustParsePrefix("2003:0:0:1101::/64"), // same /56
		netip.MustParsePrefix("2003:0:0:2200::/64"), // alone in its /56
	}
	singles, released, err := Audit(p, snapshot)
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if released != 2 || singles != 1 {
		t.Errorf("Audit = %d singles of %d", singles, released)
	}
	k := KDistribution(p, snapshot)
	if k.Len() != 2 || k.Quantile(1) != 2 {
		t.Errorf("KDistribution: n=%d max=%v", k.Len(), k.Quantile(1))
	}
	if _, _, err := Audit(p, []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")}); err == nil {
		t.Error("IPv4 snapshot audited")
	}
}

// TestDerivePolicyNetcologne: the derived policy must clear the /48
// household boundary that naive /48 truncation violates.
func TestDerivePolicyNetcologne(t *testing.T) {
	profile, _ := isp.ProfileByName("Netcologne")
	res, err := isp.Run(isp.Config{Profile: profile, Subscribers: 150, Hours: 12000, Seed: 501})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := atlas.BuildFleet(res, atlas.DefaultFleetConfig(70, 502))
	if err != nil {
		t.Fatal(err)
	}
	pas := core.Analyze(atlas.Sanitize(fleet.Series, fleet.BGP, atlas.DefaultSanitizeConfig()).Clean,
		core.DefaultExtractConfig())
	pol, err := DerivePolicy(8422, pas, 8)
	if err != nil {
		t.Fatalf("DerivePolicy: %v", err)
	}
	if pol.SubscriberLen != 48 {
		t.Errorf("subscriber boundary /%d, want /48", pol.SubscriberLen)
	}
	if pol.TruncateLen >= 48 {
		t.Errorf("policy truncates at /%d, inside the household boundary", pol.TruncateLen)
	}

	// Audit against a snapshot of concurrent assignments.
	var snapshot []netip.Prefix
	at := res.Hours / 2
	for _, sub := range res.Subscribers {
		var cur netip.Prefix
		for _, st := range sub.V6 {
			if st.Start > at {
				break
			}
			cur = st.LAN
		}
		if cur.IsValid() {
			snapshot = append(snapshot, cur)
		}
	}
	// Naive /48: every released prefix is a single household.
	naive := Policy{TruncateLen: 48, SubscriberLen: 48}
	s48, r48, _ := Audit(naive, snapshot)
	if s48 != r48 {
		t.Errorf("naive /48: %d of %d singletons, want all", s48, r48)
	}
	// Derived policy: no singletons.
	sd, rd, _ := Audit(pol, snapshot)
	if rd == 0 || sd != 0 {
		t.Errorf("derived policy: %d of %d singletons, want none", sd, rd)
	}
}

func TestDerivePolicyErrors(t *testing.T) {
	if _, err := DerivePolicy(1, nil, 8); err == nil {
		t.Error("policy without data derived")
	}
	if _, err := DerivePolicy(1, nil, -1); err == nil {
		t.Error("negative margin accepted")
	}
}
