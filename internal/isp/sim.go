package isp

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math/bits"
	"math/rand"
	"net/netip"

	"dynamips/internal/bgp"
	"dynamips/internal/dhcp6"
	"dynamips/internal/faultnet"
	"dynamips/internal/netutil"
	"dynamips/internal/radius"
)

// Config drives one AS simulation.
type Config struct {
	Profile Profile
	// Subscribers is the population size.
	Subscribers int
	// Hours is the simulated horizon (the paper's Atlas window is
	// ~50,400 hours; 6 years).
	Hours int64
	// Seed makes the run reproducible.
	Seed int64
	// Faults, when non-nil, routes every assignment change through a
	// lossy subscriber↔server link: RADIUS Access-Requests go over the
	// wire codec with RFC-style retransmission and server-side duplicate
	// detection, and DHCPv6 changes only land when the simulated
	// Solicit/Request (or Renew) exchange survives the link. Each
	// subscriber×family link draws its fault schedule from its own
	// faultnet stream seeded by Seed, so the simulation's main RNG — and
	// with it the change schedule — is untouched: a non-nil all-zero
	// profile reproduces the nil-Faults output byte for byte. nil keeps
	// the direct in-process call path.
	Faults *faultnet.Profile
	// RelayHops, when positive, inserts that many aggregation hops — a
	// DHCPv4 relay chain or DHCPv6 LDRA path — between every subscriber
	// and its servers. Each hop applies RelayFaults independently in
	// both directions from its own streams; the access link's schedule
	// is untouched (faultnet.NewRelayLink), so hops with a zero relay
	// profile reproduce the hop-free output byte for byte.
	RelayHops int
	// RelayFaults is the per-hop fault profile; nil reuses Faults.
	// Setting RelayHops with a nil Faults runs a perfect access link
	// behind lossy relays.
	RelayFaults *faultnet.Profile
}

// V4Step is one IPv4 assignment: Addr holds from Start (hours) until the
// next step's Start, or the horizon.
type V4Step struct {
	Start int64
	Addr  netip.Addr
}

// V6Step is one IPv6 assignment: the LAN /64 the subscriber's devices see
// and the delegated prefix behind it.
type V6Step struct {
	Start     int64
	LAN       netip.Prefix
	Delegated netip.Prefix
}

// Subscriber is one simulated CPE with its full assignment history.
type Subscriber struct {
	ID        int
	DualStack bool
	Static    bool
	Scramble  bool
	Region    int
	V4        []V4Step
	V6        []V6Step

	class   Class
	gen     int // bumped when a policy shift re-classes the subscriber
	shifted bool
	duid    dhcp6.DUID
	user    string
	v4Srv   *radius.Server
	v6Srv   *dhcp6.Server
	v6SrvID int
}

// NetStats aggregates one AS simulation's assignment-plane totals:
// per-family link fault events and per-protocol server counters. Every
// field is a plain sum over per-subscriber links and per-region servers,
// so the totals are invariant under the pipeline's worker count and
// merge deterministically across ASes.
type NetStats struct {
	// Link4/Link6 sum the per-subscriber lossy-link verdicts (zero
	// without Config.Faults, which keeps the in-process call path).
	Link4, Link6 faultnet.LinkStats
	// Radius sums the v4 session servers; DHCP6 sums the delegation
	// servers.
	Radius radius.ServerStats
	// DHCP6 sums the delegation servers' totals.
	DHCP6 dhcp6.ServerStats
}

// Result is a finished simulation: the ground truth the synthetic Atlas and
// CDN datasets are derived from.
type Result struct {
	Profile     Profile
	Hours       int64
	Subscribers []*Subscriber
	BGP         *bgp.Table
	// Net carries the simulation's protocol/fault accounting.
	Net NetStats
}

type simClock struct{ sec int64 }

func (c *simClock) Now() int64 { return c.sec }

// event kinds, ordered for deterministic tie-breaks.
const (
	evBoth = iota
	evV4
	evV6
	evScramble
	evInfraOutage // sub field holds the region index
	evAdminRenumber
)

type event struct {
	at   int64
	seq  int
	sub  int
	kind int
	gen  int // drops events scheduled under a superseded policy
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// sim holds the live machinery of one run.
type sim struct {
	cfg   Config
	rng   *rand.Rand
	clock *simClock
	subs  []*Subscriber

	// v4Srvs[region][bgpIdx] allocates from that region's pool inside
	// that announced prefix.
	v4Srvs [][]*radius.Server
	// v6Srvs[i]: one delegation server per regional pool; indices
	// >= Regions are pools in BGP6Extra aggregates.
	v6Srvs []*dhcp6.Server

	// links4/links6 are the per-subscriber lossy links (nil without
	// cfg.Faults); link ids 2i and 2i+1 keep the families uncorrelated.
	links4, links6 []*faultnet.Link

	events eventHeap
	seq    int
}

// Run simulates the configured AS population and returns its full
// assignment history.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.Subscribers <= 0 || cfg.Hours <= 0 {
		return nil, fmt.Errorf("isp: need positive subscribers and hours")
	}
	s := &sim{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		clock: &simClock{},
	}
	if err := s.buildServers(); err != nil {
		return nil, err
	}
	s.buildSubscribers()
	s.run()
	res := &Result{
		Profile:     cfg.Profile,
		Hours:       cfg.Hours,
		Subscribers: s.subs,
		BGP:         s.buildBGP(),
		Net:         s.collectNetStats(),
	}
	return res, nil
}

// collectNetStats sums the simulation's link and server totals in their
// construction order, so the aggregate is reproducible by definition.
func (s *sim) collectNetStats() NetStats {
	var n NetStats
	for _, l := range s.links4 {
		n.Link4.Add(l.Stats())
	}
	for _, l := range s.links6 {
		n.Link6.Add(l.Stats())
	}
	for _, region := range s.v4Srvs {
		for _, srv := range region {
			n.Radius.Add(srv.Stats())
		}
	}
	for _, srv := range s.v6Srvs {
		n.DHCP6.Add(srv.Stats())
	}
	return n
}

func (s *sim) buildServers() error {
	p := s.cfg.Profile
	// Session timeouts/lease lifetimes are protocol-level dressing; the
	// change schedule is driven by the duration models.
	lease := p.LeaseHours
	if lease == 0 {
		lease = 24
	}
	s.v4Srvs = make([][]*radius.Server, p.Regions)
	for r := 0; r < p.Regions; r++ {
		s.v4Srvs[r] = make([]*radius.Server, len(p.BGP4))
		for b, bp := range p.BGP4 {
			// Spread regional pools across each announced prefix.
			span := uint64(1) << uint(p.PoolLen4-bp.Bits())
			idx := (uint64(r) * span) / uint64(p.Regions)
			pool, err := netutil.SubPrefix(bp, p.PoolLen4, idx)
			if err != nil {
				return fmt.Errorf("isp: carving v4 pool: %w", err)
			}
			s.v4Srvs[r][b] = radius.NewServer(radius.ServerConfig{
				Pools4:         []netip.Prefix{pool},
				SessionTimeout: lease * 3600,
				Stride:         257, // scatter active addresses across the pool's /24s
			})
		}
	}
	// CPEs renew their delegations continuously while online, so a
	// binding must never expire underneath the schedule: lifetimes cover
	// the whole horizon. (A lifetime equal to the change period would
	// let the server reclaim and instantly re-issue the same prefix.)
	valid := uint32(4_000_000_000)
	if sec := (s.cfg.Hours + 24) * 3600; sec < int64(valid) {
		valid = uint32(sec)
	}
	addV6Pool := func(agg netip.Prefix, idx uint64) error {
		pool, err := netutil.SubPrefix(agg, p.PoolLen6, idx)
		if err != nil {
			return fmt.Errorf("isp: carving v6 pool: %w", err)
		}
		s.v6Srvs = append(s.v6Srvs, dhcp6.NewServer(dhcp6.ServerConfig{
			Pools:        []netip.Prefix{pool},
			DelegatedLen: p.DelegatedLen,
			ValidSeconds: valid,
			Stride:       2557, // scatter delegations across the pool's sub-blocks
		}, s.clock))
		return nil
	}
	// Place the regional pools so that a cross-pool jump shares about
	// CrossCPL leading bits with the previous assignment: the region
	// index field sits immediately below bit CrossCPL.
	crossCPL := p.CrossCPL
	if crossCPL == 0 {
		crossCPL = p.PoolLen6 - 16
	}
	if crossCPL < p.BGP6.Bits() {
		crossCPL = p.BGP6.Bits()
	}
	regionBits := bits.Len(uint(p.Regions - 1))
	shift := p.PoolLen6 - crossCPL - regionBits
	if shift < 0 {
		shift = 0
	}
	for r := 0; r < p.Regions; r++ {
		if err := addV6Pool(p.BGP6, uint64(r)<<uint(shift)); err != nil {
			return err
		}
	}
	for _, extra := range p.BGP6Extra {
		if p.PoolLen6 < extra.Bits() {
			return fmt.Errorf("isp: pool /%d shorter than extra aggregate %v", p.PoolLen6, extra)
		}
		if err := addV6Pool(extra, 0); err != nil {
			return err
		}
	}
	return nil
}

func (s *sim) buildBGP() *bgp.Table {
	p := s.cfg.Profile
	t := &bgp.Table{}
	for _, b := range p.BGP4 {
		t.Announce(b, p.ASN)
	}
	t.Announce(p.BGP6, p.ASN)
	for _, b := range p.BGP6Extra {
		t.Announce(b, p.ASN)
	}
	t.SetName(p.ASN, p.Name)
	return t
}

func pickClass(classes []Class, rng *rand.Rand) Class {
	var total float64
	for _, c := range classes {
		total += c.Weight
	}
	x := rng.Float64() * total
	for _, c := range classes {
		x -= c.Weight
		if x <= 0 {
			return c
		}
	}
	return classes[len(classes)-1]
}

func (s *sim) buildSubscribers() {
	p := s.cfg.Profile
	s.subs = make([]*Subscriber, s.cfg.Subscribers)
	for i := range s.subs {
		var mac [6]byte
		binary.BigEndian.PutUint32(mac[2:], uint32(i+1))
		mac[0] = 0x02 // locally administered
		sub := &Subscriber{
			ID:        i,
			DualStack: s.rng.Float64() < p.DualStackFrac,
			Static:    s.rng.Float64() < p.StaticFrac,
			Region:    s.rng.Intn(p.Regions),
			duid:      dhcp6.DUIDLL(mac),
			user:      fmt.Sprintf("%s-cpe-%06d", p.Name, i),
		}
		if sub.DualStack {
			sub.class = pickClass(p.DS, s.rng)
			sub.Scramble = s.rng.Float64() < p.ScrambleFrac
		} else {
			sub.class = pickClass(p.NDS, s.rng)
		}
		s.subs[i] = sub
	}
	if s.cfg.Faults != nil || s.cfg.RelayHops > 0 {
		var prof faultnet.Profile
		if s.cfg.Faults != nil {
			prof = *s.cfg.Faults
		}
		relayProf := prof
		if s.cfg.RelayFaults != nil {
			relayProf = *s.cfg.RelayFaults
		}
		s.links4 = make([]*faultnet.Link, len(s.subs))
		s.links6 = make([]*faultnet.Link, len(s.subs))
		for i := range s.subs {
			s.links4[i] = faultnet.NewRelayLink(prof, relayProf, uint64(s.cfg.Seed), uint64(2*i), s.cfg.RelayHops)
			s.links6[i] = faultnet.NewRelayLink(prof, relayProf, uint64(s.cfg.Seed), uint64(2*i+1), s.cfg.RelayHops)
		}
	}
}

// pushInfra schedules a regional infrastructure outage; these events are
// not tied to a subscriber generation.
func (s *sim) pushInfra(at int64, region int) {
	if at >= s.cfg.Hours {
		return
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, sub: region, kind: evInfraOutage})
}

// infraOutage models the region's assignment servers losing state: fresh
// sessions and delegations for every affected (non-static) subscriber in
// the same hour.
func (s *sim) infraOutage(t int64, region int) {
	s.v6Srvs[region].LoseState()
	for _, sub := range s.subs {
		if sub.Region != region || sub.Static {
			continue
		}
		s.changeV4(t, sub)
		if sub.DualStack && sub.v6SrvID == region {
			s.changeV6(t, sub)
		}
	}
}

// adminRenumber models ISP-wide renumbering: every delegation server
// drops its bindings and advances past previously issued space, then all
// non-static subscribers re-acquire in the same hour.
func (s *sim) adminRenumber(t int64) {
	for _, srv := range s.v6Srvs {
		srv.Renumber()
	}
	for _, sub := range s.subs {
		if sub.Static {
			continue
		}
		s.changeV4(t, sub)
		if sub.DualStack {
			s.changeV6(t, sub)
		}
	}
}

func (s *sim) push(at int64, sub, kind int) {
	if at >= s.cfg.Hours {
		return
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, sub: sub, kind: kind, gen: s.subs[sub].gen})
}

func (s *sim) scheduleNext(t int64, sub *Subscriber) {
	if sub.Static {
		return
	}
	c := sub.class
	if sub.DualStack && c.Coupled {
		if !c.V4.Static() {
			s.push(t+int64(c.V4.Next(s.rng)), sub.ID, evBoth)
		}
		return
	}
	if !c.V4.Static() {
		s.push(t+int64(c.V4.Next(s.rng)), sub.ID, evV4)
	}
	if sub.DualStack && !c.V6.Static() {
		s.push(t+int64(c.V6.Next(s.rng)), sub.ID, evV6)
	}
}

// scheduleOne re-arms a single process after it fired.
func (s *sim) scheduleOne(t int64, sub *Subscriber, kind int) {
	c := sub.class
	switch kind {
	case evBoth:
		s.push(t+int64(c.V4.Next(s.rng)), sub.ID, evBoth)
	case evV4:
		s.push(t+int64(c.V4.Next(s.rng)), sub.ID, evV4)
	case evV6:
		s.push(t+int64(c.V6.Next(s.rng)), sub.ID, evV6)
	case evScramble:
		s.push(t+max(1, int64(s.rng.ExpFloat64()*s.cfg.Profile.ScrambleMeanHours)), sub.ID, evScramble)
	}
}

func (s *sim) changeV4(t int64, sub *Subscriber) {
	p := s.cfg.Profile
	bgpIdx := 0
	if cur := sub.v4Srv; cur != nil {
		// Find the current server's BGP index to decide locality.
		curIdx := 0
		for b, srv := range s.v4Srvs[sub.Region] {
			if srv == cur {
				curIdx = b
				break
			}
		}
		bgpIdx = curIdx
		if len(p.BGP4) > 1 && s.rng.Float64() < p.CrossBGP4Frac {
			// Move to a different announced prefix.
			bgpIdx = s.rng.Intn(len(p.BGP4) - 1)
			if bgpIdx >= curIdx {
				bgpIdx++
			}
		}
	} else {
		bgpIdx = s.rng.Intn(len(p.BGP4))
	}
	srv := s.v4Srvs[sub.Region][bgpIdx]
	var addr netip.Addr
	if s.links4 != nil {
		a, ok := s.accessOverLink(sub, srv)
		if !ok {
			return // no Accept survived the network: keep the old address
		}
		addr = a
	} else {
		sess, err := srv.StartSession(sub.user, s.clock.sec)
		if err != nil {
			return // pool exhausted: keep the old address
		}
		addr = sess.Addr4
	}
	if sub.v4Srv != nil && sub.v4Srv != srv {
		sub.v4Srv.StopSession(sub.user)
	}
	sub.v4Srv = srv
	sub.pushV4(V4Step{Start: t, Addr: addr})
}

// v4AttemptCap bounds how many full retransmission schedules a CPE runs
// before giving up on a change and keeping its address — the same
// fallback as pool exhaustion.
const v4AttemptCap = 8

// accessOverLink runs Access-Request/Accept over the subscriber's lossy
// link. The request's identifier and authenticator come from the link's
// client stream; every copy the uplink delivers hits srv.Handle, so a
// duplicated request genuinely exercises the server's RFC 5080 duplicate
// cache (same reply, no second allocation); and the client takes the
// reply only when the downlink delivered it before the RADIUS
// retransmission schedule gave up. A failed schedule is retried with a
// fresh identifier — a new request, as a rebooting CPE would send — up to
// v4AttemptCap attempts.
func (s *sim) accessOverLink(sub *Subscriber, srv *radius.Server) (netip.Addr, bool) {
	link := s.links4[sub.ID]
	cs := link.Client()
	nowMS := s.clock.sec * 1000
	for attempt := 0; attempt < v4AttemptCap; attempt++ {
		req := radius.New(radius.AccessRequest, byte(cs.Uint64()))
		binary.BigEndian.PutUint64(req.Authenticator[0:8], cs.Uint64())
		binary.BigEndian.PutUint64(req.Authenticator[8:16], cs.Uint64())
		req.AddString(radius.AttrUserName, sub.user)
		var rep *radius.Packet
		v := link.Exchange(nowMS, radius.NewRetransmitter(cs), func(int) {
			if r, err := srv.Handle(req, s.clock.sec); err == nil && rep == nil {
				rep = r
			}
		})
		nowMS = v.DoneMS
		if !v.OK || rep == nil {
			continue // every transmission or every reply was lost
		}
		if rep.Code != radius.AccessAccept {
			return netip.Addr{}, false // pool exhausted: keep the old address
		}
		a, ok := rep.GetAddr4(radius.AttrFramedIPAddress)
		return a, ok
	}
	return netip.Addr{}, false
}

// pushV4 records a step, coalescing multiple changes within the same hour
// (the dataset's granularity: only the last address of an hour is visible).
func (sub *Subscriber) pushV4(st V4Step) {
	if n := len(sub.V4); n > 0 && sub.V4[n-1].Start == st.Start {
		sub.V4[n-1] = st
		return
	}
	sub.V4 = append(sub.V4, st)
}

// pushV6 records a step with the same same-hour coalescing as pushV4.
func (sub *Subscriber) pushV6(st V6Step) {
	if n := len(sub.V6); n > 0 && sub.V6[n-1].Start == st.Start {
		sub.V6[n-1] = st
		return
	}
	sub.V6 = append(sub.V6, st)
}

func (s *sim) lanFrom(delegated netip.Prefix, sub *Subscriber) netip.Prefix {
	lan := netip.PrefixFrom(delegated.Addr(), 64)
	if sub.Scramble {
		lan = netutil.ScrambleBits(lan, s.cfg.Profile.DelegatedLen, s.rng.Uint64())
	}
	return lan
}

func (s *sim) changeV6(t int64, sub *Subscriber) {
	p := s.cfg.Profile
	poolIdx := sub.v6SrvID
	if sub.v6Srv == nil {
		poolIdx = sub.Region
	} else if len(s.v6Srvs) > 1 && s.rng.Float64() < p.CrossPool6Frac {
		if len(p.BGP6Extra) > 0 && s.rng.Float64() < p.CrossBGP6Frac {
			poolIdx = p.Regions + s.rng.Intn(len(p.BGP6Extra))
		} else {
			poolIdx = s.rng.Intn(p.Regions)
		}
	}
	srv := s.v6Srvs[poolIdx]
	if s.links6 != nil && !s.v6ChangeDelivered(sub, sub.v6Srv == srv) {
		return // the exchange never completed: keep the old delegation
	}
	var (
		b   dhcp6.Binding
		err error
	)
	if sub.v6Srv == srv {
		b, err = srv.Reassign(sub.duid, uint32(t))
	} else {
		b, err = srv.Acquire(sub.duid, uint32(t))
		if err == nil && sub.v6Srv != nil {
			sub.v6Srv.ReleaseBinding(sub.duid)
		}
	}
	if err != nil {
		return // pool exhausted: keep the old delegation
	}
	sub.v6Srv = srv
	sub.v6SrvID = poolIdx
	sub.pushV6(V6Step{Start: t, LAN: s.lanFrom(b.Prefix, sub), Delegated: b.Prefix})
}

// v6SimBoundMS caps simulated DHCPv6 schedules at one virtual hour: RFC
// 8415 lets Solicit and Renew retransmit indefinitely, but past the hour
// the change is moot at the dataset's granularity and the CPE keeps its
// old delegation.
const v6SimBoundMS = 3_600_000

// v6ChangeDelivered replays the message exchanges a v6 change rides on:
// Renew for an in-place reassignment, Solicit then Request when the
// subscriber moves servers. The server-side allocation happens once,
// in-process, only after every exchange survived the link — DHCPv6
// transaction-id dedup is modeled by that single-call gate (the RADIUS
// path is where genuine server-side duplicate detection is exercised).
func (s *sim) v6ChangeDelivered(sub *Subscriber, sameSrv bool) bool {
	link := s.links6[sub.ID]
	cs := link.Client()
	nowMS := s.clock.sec * 1000
	exchange := func(p dhcp6.RetransParams) bool {
		p.MRD = v6SimBoundMS
		v := link.Exchange(nowMS, dhcp6.NewRetransmitter(p, cs), nil)
		nowMS = v.DoneMS
		return v.OK
	}
	if sameSrv && sub.v6Srv != nil {
		return exchange(dhcp6.RenewParams())
	}
	return exchange(dhcp6.SolicitParams()) && exchange(dhcp6.RequestParams())
}

func (s *sim) run() {
	p := s.cfg.Profile
	// Initial assignments at t=0.
	for _, sub := range s.subs {
		s.clock.sec = 0
		s.changeV4(0, sub)
		if sub.DualStack {
			s.changeV6(0, sub)
			if sub.Scramble && p.ScrambleMeanHours > 0 {
				s.push(max(1, int64(s.rng.ExpFloat64()*p.ScrambleMeanHours)), sub.ID, evScramble)
			}
		}
		s.scheduleNext(0, sub)
	}
	if p.InfraOutageMeanHours > 0 {
		for r := 0; r < p.Regions; r++ {
			s.pushInfra(max(1, int64(s.rng.ExpFloat64()*p.InfraOutageMeanHours)), r)
		}
	}
	for _, at := range p.AdminRenumberAtHours {
		if at > 0 && at < s.cfg.Hours {
			s.seq++
			heap.Push(&s.events, event{at: at, seq: s.seq, kind: evAdminRenumber})
		}
	}
	shift := p.Shift
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		if ev.kind == evInfraOutage {
			s.clock.sec = ev.at * 3600
			s.infraOutage(ev.at, ev.sub)
			s.pushInfra(ev.at+max(1, int64(s.rng.ExpFloat64()*p.InfraOutageMeanHours)), ev.sub)
			continue
		}
		if ev.kind == evAdminRenumber {
			s.clock.sec = ev.at * 3600
			s.adminRenumber(ev.at)
			continue
		}
		sub := s.subs[ev.sub]
		if ev.gen != sub.gen {
			continue // scheduled under a superseded policy
		}
		s.clock.sec = ev.at * 3600
		switch ev.kind {
		case evBoth:
			s.changeV4(ev.at, sub)
			s.changeV6(ev.at, sub)
		case evV4:
			s.changeV4(ev.at, sub)
		case evV6:
			s.changeV6(ev.at, sub)
		case evScramble:
			if n := len(sub.V6); n > 0 {
				d := sub.V6[n-1].Delegated
				lan := netutil.ScrambleBits(netip.PrefixFrom(d.Addr(), 64), p.DelegatedLen, s.rng.Uint64())
				if lan != sub.V6[n-1].LAN {
					sub.pushV6(V6Step{Start: ev.at, LAN: lan, Delegated: d})
				}
			}
		}
		if shift != nil && !sub.shifted && ev.at >= shift.AtHour && ev.kind != evScramble {
			// Policy change: the subscriber re-draws its behavior class
			// and re-arms its change processes under the new policy.
			sub.shifted = true
			sub.gen++
			if sub.DualStack && shift.DSAfter != nil {
				sub.class = pickClass(shift.DSAfter, s.rng)
			} else if !sub.DualStack && shift.NDSAfter != nil {
				sub.class = pickClass(shift.NDSAfter, s.rng)
			}
			if sub.Scramble && p.ScrambleMeanHours > 0 {
				s.push(ev.at+max(1, int64(s.rng.ExpFloat64()*p.ScrambleMeanHours)), sub.ID, evScramble)
			}
			s.scheduleNext(ev.at, sub)
			continue
		}
		s.scheduleOne(ev.at, sub, ev.kind)
	}
}
