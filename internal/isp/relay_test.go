package isp

import (
	"testing"

	"dynamips/internal/faultnet"
)

func runRelay(t *testing.T, cfg Config) *Result {
	t.Helper()
	cfg.Profile = testProfile()
	cfg.Subscribers = 40
	cfg.Hours = 2000
	cfg.Seed = 91
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func sameHistories(a, b *Result) bool {
	for i := range a.Subscribers {
		sa, sb := a.Subscribers[i], b.Subscribers[i]
		if len(sa.V4) != len(sb.V4) || len(sa.V6) != len(sb.V6) {
			return false
		}
		for j := range sa.V4 {
			if sa.V4[j] != sb.V4[j] {
				return false
			}
		}
		for j := range sa.V6 {
			if sa.V6[j] != sb.V6[j] {
				return false
			}
		}
	}
	return true
}

// TestRelayZeroProfileIdentity: adding aggregation hops with a zero
// per-hop profile must reproduce the hop-free run byte for byte — the
// relay streams live in their own id space and a zero profile consumes
// nothing, so the access link's schedule is untouched.
func TestRelayZeroProfileIdentity(t *testing.T) {
	access := faultnet.Profile{Drop: 0.05}
	plain := runRelay(t, Config{Faults: &access})
	relayed := runRelay(t, Config{Faults: &access, RelayHops: 3, RelayFaults: &faultnet.Profile{}})
	if !sameHistories(plain, relayed) {
		t.Fatal("zero-profile relay hops changed the assignment histories")
	}
	if relayed.Net.Link4.RelayDrops != 0 || relayed.Net.Link6.RelayDrops != 0 {
		t.Errorf("zero-profile hops dropped datagrams: %d/%d",
			relayed.Net.Link4.RelayDrops, relayed.Net.Link6.RelayDrops)
	}
}

// TestRelayLossDeterministic: lossy hops behind a perfect access link
// drop datagrams, perturb the histories, and replay identically.
func TestRelayLossDeterministic(t *testing.T) {
	cfg := Config{RelayHops: 2, RelayFaults: &faultnet.Profile{Drop: 0.25}}
	a := runRelay(t, cfg)
	b := runRelay(t, cfg)
	if !sameHistories(a, b) {
		t.Fatal("lossy relay runs diverged across replays")
	}
	if a.Net.Link4.RelayDrops == 0 || a.Net.Link6.RelayDrops == 0 {
		t.Errorf("no relay drops recorded: v4=%d v6=%d",
			a.Net.Link4.RelayDrops, a.Net.Link6.RelayDrops)
	}
	if a.Net.Link4.Failed == 0 {
		t.Error("relay loss never exhausted a retransmission schedule")
	}
	direct := runRelay(t, Config{})
	if sameHistories(a, direct) {
		t.Error("25% per-hop loss left every assignment history unchanged")
	}
}
