package isp

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"dynamips/internal/dhcp4"
	"dynamips/internal/dhcp6"
	"dynamips/internal/radius"
)

// TestCPEBootstrapOverWire exercises the full CPE bring-up the simulator
// models, but over real UDP sockets: RADIUS authentication for the
// session, DHCPv4 for the WAN address, DHCPv6 IA_PD for the delegated
// prefix — then a renumbering cycle.
func TestCPEBootstrapOverWire(t *testing.T) {
	now := time.Now().Unix()
	clock := dhcp6.ClockFunc(func() int64 { return now })

	// ISP side: three assignment servers on loopback.
	radSrv := radius.NewServer(radius.ServerConfig{
		Pools4:         []netip.Prefix{netip.MustParsePrefix("81.10.0.0/24")},
		Pools6:         []netip.Prefix{netip.MustParsePrefix("2003:1000::/40")},
		DelegatedLen6:  56,
		SessionTimeout: 86400,
		Secret:         []byte("wire-secret"),
	})
	d4Srv := dhcp4.NewServer(dhcp4.ServerConfig{
		Pools:        []netip.Prefix{netip.MustParsePrefix("100.64.0.0/24")},
		LeaseSeconds: 86400,
		Sticky:       true,
	}, dhcp4.ClockFunc(func() int64 { return now }))
	d6Srv := dhcp6.NewServer(dhcp6.ServerConfig{
		Pools:        []netip.Prefix{netip.MustParsePrefix("2003:2000::/40")},
		DelegatedLen: 56,
		ValidSeconds: 86400,
	}, clock)

	listen := func() net.PacketConn {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		t.Cleanup(func() { pc.Close() })
		return pc
	}
	radConn, d4Conn, d6Conn := listen(), listen(), listen()
	go radius.Serve(radConn, radSrv, func() int64 { return now })
	go dhcp4.Serve(d4Conn, d4Srv)
	go dhcp6.Serve(d6Conn, d6Srv)

	// CPE side.
	cpeRad := listen()
	req := radius.New(radius.AccessRequest, 1)
	req.Authenticator = [16]byte{1, 2, 3}
	req.AddString(radius.AttrUserName, "wire-cpe-1")
	hidden, err := radius.HidePassword("hunter2", []byte("wire-secret"), req.Authenticator)
	if err != nil {
		t.Fatal(err)
	}
	req.Add(radius.AttrUserPassword, hidden)
	if _, err := cpeRad.WriteTo(req.Encode(), radConn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	cpeRad.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := cpeRad.ReadFrom(buf)
	if err != nil {
		t.Fatalf("radius read: %v", err)
	}
	if err := radius.VerifyResponse(buf[:n], req, []byte("wire-secret")); err != nil {
		t.Fatalf("response authenticator: %v", err)
	}
	accept, err := radius.Parse(buf[:n])
	if err != nil || accept.Code != radius.AccessAccept {
		t.Fatalf("radius accept: %v %v", accept.Code, err)
	}
	framed, _ := accept.GetAddr4(radius.AttrFramedIPAddress)
	delegated, _ := accept.GetPrefix6(radius.AttrDelegatedIPv6Prefix)
	if !framed.IsValid() || !delegated.IsValid() {
		t.Fatalf("missing session addresses: %v %v", framed, delegated)
	}

	// DHCPv4 DORA for the CPE's local pool.
	d4Client := &dhcp4.Client{
		Conn: listen(), Server: d4Conn.LocalAddr(),
		HW:    dhcp4.HWAddr{2, 0, 0, 0, 0, 9},
		Clock: dhcp4.ClockFunc(func() int64 { return now }),
	}
	lease, err := d4Client.Acquire()
	if err != nil {
		t.Fatalf("dhcp4 acquire: %v", err)
	}
	if !netip.MustParsePrefix("100.64.0.0/24").Contains(lease.Addr) {
		t.Fatalf("lease %v outside pool", lease.Addr)
	}
	if lease.Expiry != now+86400 {
		t.Fatalf("dhcp4 lease expiry %d, want clock-consistent %d", lease.Expiry, now+86400)
	}

	// DHCPv6 IA_PD.
	d6Client := &dhcp6.Client{Conn: listen(), Server: d6Conn.LocalAddr(), DUID: dhcp6.DUIDLL([6]byte{2, 0, 0, 0, 0, 9}), Clock: clock}
	pd, err := d6Client.AcquirePD()
	if err != nil {
		t.Fatalf("dhcp6 acquire: %v", err)
	}
	if pd.Prefix.Bits() != 56 || !netip.MustParsePrefix("2003:2000::/40").Contains(pd.Prefix.Addr()) {
		t.Fatalf("delegation %v", pd.Prefix)
	}

	// Renumbering cycle: the RADIUS session restarts and must hand out
	// fresh addresses.
	req2 := radius.New(radius.AccessRequest, 2)
	req2.Authenticator = [16]byte{9, 9, 9}
	req2.AddString(radius.AttrUserName, "wire-cpe-1")
	if _, err := cpeRad.WriteTo(req2.Encode(), radConn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	cpeRad.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err = cpeRad.ReadFrom(buf)
	if err != nil {
		t.Fatalf("radius read 2: %v", err)
	}
	accept2, err := radius.Parse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	framed2, _ := accept2.GetAddr4(radius.AttrFramedIPAddress)
	delegated2, _ := accept2.GetPrefix6(radius.AttrDelegatedIPv6Prefix)
	if framed2 == framed && delegated2 == delegated {
		t.Error("reconnect reused both addresses")
	}
}
