package isp

import (
	"math/rand"
	"net/netip"
	"testing"

	"dynamips/internal/netutil"
)

func testProfile() Profile {
	p, ok := ProfileByName("DTAG")
	if !ok {
		panic("DTAG profile missing")
	}
	return p
}

func smallRun(t *testing.T, subs int, hours int64, seed int64) *Result {
	t.Helper()
	res, err := Run(Config{Profile: testProfile(), Subscribers: subs, Hours: hours, Seed: seed})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
	if len(Profiles()) < 10 {
		t.Errorf("expected at least the paper's 10 ASes, have %d", len(Profiles()))
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("DTAG"); !ok {
		t.Error("DTAG not found")
	}
	if _, ok := ProfileByName("NoSuchISP"); ok {
		t.Error("bogus profile found")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := testProfile()
	mutations := map[string]func(*Profile){
		"no name":      func(p *Profile) { p.Name = "" },
		"zero asn":     func(p *Profile) { p.ASN = 0 },
		"no bgp4":      func(p *Profile) { p.BGP4 = nil },
		"no bgp6":      func(p *Profile) { p.BGP6 = netip.Prefix{} },
		"no regions":   func(p *Profile) { p.Regions = 0 },
		"bad pool6":    func(p *Profile) { p.PoolLen6 = 10 },
		"long deleg":   func(p *Profile) { p.DelegatedLen = 96; p.PoolLen6 = 70 },
		"no ds class":  func(p *Profile) { p.DS = nil },
		"no nds class": func(p *Profile) { p.NDS = nil },
		"bad pool4":    func(p *Profile) { p.PoolLen4 = 4 },
	}
	for name, mut := range mutations {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate did not fail", name)
		}
	}
}

func TestDurationModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	period := DurationModel{PeriodHours: 24, JitterHours: 1}
	for i := 0; i < 100; i++ {
		d := period.Next(rng)
		if d < 23 || d > 25 {
			t.Fatalf("periodic draw %v outside 24±1", d)
		}
	}
	exp := DurationModel{MeanHours: 100}
	var sum float64
	for i := 0; i < 5000; i++ {
		d := exp.Next(rng)
		if d < 1 {
			t.Fatalf("draw below 1 hour: %v", d)
		}
		sum += d
	}
	if mean := sum / 5000; mean < 80 || mean > 120 {
		t.Errorf("exponential mean %v, want ~100", mean)
	}
	static := DurationModel{}
	if !static.Static() {
		t.Error("empty model not static")
	}
	if d := static.Next(rng); !isInf(d) {
		t.Errorf("static model drew %v", d)
	}
	// Combined model: the shorter draw wins, so it can never exceed period+jitter.
	both := DurationModel{PeriodHours: 24, MeanHours: 1000}
	for i := 0; i < 100; i++ {
		if d := both.Next(rng); d > 24 {
			t.Fatalf("combined draw %v exceeds period", d)
		}
	}
}

func isInf(f float64) bool { return f > 1e300 }

func TestRunBasics(t *testing.T) {
	res := smallRun(t, 200, 2000, 1)
	if len(res.Subscribers) != 200 {
		t.Fatalf("subscribers = %d", len(res.Subscribers))
	}
	var ds, withV6 int
	for _, sub := range res.Subscribers {
		if len(sub.V4) == 0 {
			t.Fatalf("subscriber %d has no initial IPv4 step", sub.ID)
		}
		if sub.V4[0].Start != 0 {
			t.Errorf("subscriber %d first v4 step at %d", sub.ID, sub.V4[0].Start)
		}
		if sub.DualStack {
			ds++
			if len(sub.V6) > 0 {
				withV6++
			}
		} else if len(sub.V6) != 0 {
			t.Errorf("non-dual-stack subscriber %d has V6 steps", sub.ID)
		}
		if sub.Static && len(sub.V4) != 1 {
			t.Errorf("static subscriber %d has %d v4 steps", sub.ID, len(sub.V4))
		}
	}
	if ds == 0 || withV6 != ds {
		t.Errorf("dual-stack accounting: ds=%d withV6=%d", ds, withV6)
	}
	// ~68% dual-stack configured.
	if frac := float64(ds) / 200; frac < 0.5 || frac > 0.85 {
		t.Errorf("dual-stack fraction = %v", frac)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := smallRun(t, 50, 1000, 42)
	b := smallRun(t, 50, 1000, 42)
	for i := range a.Subscribers {
		sa, sb := a.Subscribers[i], b.Subscribers[i]
		if len(sa.V4) != len(sb.V4) || len(sa.V6) != len(sb.V6) {
			t.Fatalf("subscriber %d: step counts differ", i)
		}
		for j := range sa.V4 {
			if sa.V4[j] != sb.V4[j] {
				t.Fatalf("subscriber %d v4 step %d differs: %+v vs %+v", i, j, sa.V4[j], sb.V4[j])
			}
		}
		for j := range sa.V6 {
			if sa.V6[j] != sb.V6[j] {
				t.Fatalf("subscriber %d v6 step %d differs", i, j)
			}
		}
	}
}

func TestStepsMonotoneAndDistinct(t *testing.T) {
	res := smallRun(t, 100, 3000, 7)
	for _, sub := range res.Subscribers {
		for j := 1; j < len(sub.V4); j++ {
			if sub.V4[j].Start <= sub.V4[j-1].Start {
				t.Fatalf("subscriber %d: v4 steps not increasing", sub.ID)
			}
			if sub.V4[j].Addr == sub.V4[j-1].Addr {
				t.Fatalf("subscriber %d: consecutive identical v4 address %v", sub.ID, sub.V4[j].Addr)
			}
		}
		for j := 1; j < len(sub.V6); j++ {
			if sub.V6[j].Start <= sub.V6[j-1].Start {
				t.Fatalf("subscriber %d: v6 steps not increasing", sub.ID)
			}
			if sub.V6[j].LAN == sub.V6[j-1].LAN {
				t.Fatalf("subscriber %d: consecutive identical LAN %v", sub.ID, sub.V6[j].LAN)
			}
		}
	}
}

func TestAddressesInsideAnnouncedSpace(t *testing.T) {
	res := smallRun(t, 100, 2000, 3)
	p := res.Profile
	inBGP4 := func(a netip.Addr) bool {
		for _, b := range p.BGP4 {
			if b.Contains(a) {
				return true
			}
		}
		return false
	}
	for _, sub := range res.Subscribers {
		for _, st := range sub.V4 {
			if !inBGP4(st.Addr) {
				t.Fatalf("v4 address %v outside announced prefixes", st.Addr)
			}
			if asn, _, ok := res.BGP.Origin(st.Addr); !ok || asn != p.ASN {
				t.Fatalf("BGP table does not cover %v", st.Addr)
			}
		}
		for _, st := range sub.V6 {
			if !p.BGP6.Contains(st.Delegated.Addr()) {
				t.Fatalf("delegation %v outside aggregate %v", st.Delegated, p.BGP6)
			}
			if st.Delegated.Bits() != p.DelegatedLen {
				t.Fatalf("delegation length /%d, want /%d", st.Delegated.Bits(), p.DelegatedLen)
			}
			if st.LAN.Bits() != 64 {
				t.Fatalf("LAN prefix %v not a /64", st.LAN)
			}
			if !netutil.ContainsPrefix(st.Delegated, st.LAN) {
				t.Fatalf("LAN %v outside delegation %v", st.LAN, st.Delegated)
			}
		}
	}
}

func TestNoConcurrentV4Sharing(t *testing.T) {
	res := smallRun(t, 150, 2000, 9)
	type interval struct {
		start, end int64
		sub        int
	}
	byAddr := map[netip.Addr][]interval{}
	for _, sub := range res.Subscribers {
		for j, st := range sub.V4 {
			end := res.Hours
			if j+1 < len(sub.V4) {
				end = sub.V4[j+1].Start
			}
			byAddr[st.Addr] = append(byAddr[st.Addr], interval{st.Start, end, sub.ID})
		}
	}
	for addr, ivs := range byAddr {
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if a.sub != b.sub && a.start < b.end && b.start < a.end {
					t.Fatalf("address %v held by subscribers %d and %d simultaneously", addr, a.sub, b.sub)
				}
			}
		}
	}
}

func TestPeriodicClassProducesDailyDurations(t *testing.T) {
	res := smallRun(t, 300, 4000, 11)
	daily := 0
	total := 0
	for _, sub := range res.Subscribers {
		for j := 1; j < len(sub.V4); j++ {
			d := sub.V4[j].Start - sub.V4[j-1].Start
			total++
			if d >= 23 && d <= 25 {
				daily++
			}
		}
	}
	if total == 0 {
		t.Fatal("no v4 changes at all")
	}
	if frac := float64(daily) / float64(total); frac < 0.7 {
		t.Errorf("daily-duration fraction = %v; DTAG should be dominated by 24h changes", frac)
	}
}

func TestCoupledChangesSameHour(t *testing.T) {
	res := smallRun(t, 300, 4000, 13)
	// DTAG: the majority of v6 changes co-occur with a v4 change.
	co, tot := 0, 0
	for _, sub := range res.Subscribers {
		if !sub.DualStack {
			continue
		}
		v4at := map[int64]bool{}
		for _, st := range sub.V4 {
			v4at[st.Start] = true
		}
		for j := 1; j < len(sub.V6); j++ {
			if sub.V6[j].Delegated == sub.V6[j-1].Delegated {
				continue // CPE scramble, not an ISP change
			}
			tot++
			if v4at[sub.V6[j].Start] {
				co++
			}
		}
	}
	if tot == 0 {
		t.Fatal("no v6 changes")
	}
	if frac := float64(co) / float64(tot); frac < 0.8 {
		t.Errorf("co-occurrence fraction = %v, want > 0.8 for DTAG", frac)
	}
}

func TestV6LocalityWithinPool(t *testing.T) {
	res := smallRun(t, 300, 6000, 17)
	p := res.Profile
	inPool, tot := 0, 0
	for _, sub := range res.Subscribers {
		for j := 1; j < len(sub.V6); j++ {
			if sub.V6[j].Delegated == sub.V6[j-1].Delegated {
				continue
			}
			tot++
			if netutil.CommonPrefixLen64(
				netip.PrefixFrom(sub.V6[j].Delegated.Addr(), 64),
				netip.PrefixFrom(sub.V6[j-1].Delegated.Addr(), 64)) >= p.PoolLen6 {
				inPool++
			}
		}
	}
	if tot == 0 {
		t.Fatal("no v6 changes")
	}
	if frac := float64(inPool) / float64(tot); frac < 0.9 {
		t.Errorf("same-pool fraction = %v, want > 0.9 (CrossPool6Frac is 0.02)", frac)
	}
}

func TestScramblerKeepsDelegationBits(t *testing.T) {
	res := smallRun(t, 400, 4000, 19)
	p := res.Profile
	var scramblers, rescrambles int
	for _, sub := range res.Subscribers {
		if !sub.Scramble {
			// Zero-mode CPEs announce the lowest /64: trailing bits zero.
			for _, st := range sub.V6 {
				if netutil.ZeroBitsBefore64(st.LAN) < 64-p.DelegatedLen {
					t.Fatalf("zero-mode CPE LAN %v has non-zero bits below /%d", st.LAN, p.DelegatedLen)
				}
			}
			continue
		}
		scramblers++
		for j, st := range sub.V6 {
			if netutil.CommonPrefixLen64(st.LAN, netip.PrefixFrom(st.Delegated.Addr(), 64)) < p.DelegatedLen {
				t.Fatalf("scrambled LAN %v escaped delegation %v", st.LAN, st.Delegated)
			}
			if j > 0 && st.Delegated == sub.V6[j-1].Delegated {
				rescrambles++
			}
		}
	}
	if scramblers == 0 {
		t.Fatal("no scramblers in a DTAG run")
	}
	if rescrambles == 0 {
		t.Error("no rescramble events observed")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{Profile: testProfile(), Subscribers: 0, Hours: 10}); err == nil {
		t.Error("zero subscribers accepted")
	}
	if _, err := Run(Config{Profile: testProfile(), Subscribers: 10, Hours: 0}); err == nil {
		t.Error("zero hours accepted")
	}
	bad := testProfile()
	bad.Name = ""
	if _, err := Run(Config{Profile: bad, Subscribers: 10, Hours: 10}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestCrossBGP6(t *testing.T) {
	p, ok := ProfileByName("Free SAS")
	if !ok {
		t.Fatal("Free SAS profile missing")
	}
	res, err := Run(Config{Profile: p, Subscribers: 400, Hours: 50400, Seed: 23})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	extra := 0
	for _, sub := range res.Subscribers {
		for _, st := range sub.V6 {
			inMain := p.BGP6.Contains(st.Delegated.Addr())
			inExtra := false
			for _, e := range p.BGP6Extra {
				if e.Contains(st.Delegated.Addr()) {
					inExtra = true
				}
			}
			if !inMain && !inExtra {
				t.Fatalf("delegation %v outside all aggregates", st.Delegated)
			}
			if inExtra {
				extra++
			}
		}
	}
	if extra == 0 {
		t.Error("no delegations from BGP6Extra despite CrossBGP6Frac > 0")
	}
}

func BenchmarkRunDTAG(b *testing.B) {
	p := testProfile()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Profile: p, Subscribers: 200, Hours: 8760, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestInfraOutagesCorrelateChanges(t *testing.T) {
	p := testProfile()
	// Quiet classes so outages are the dominant change source.
	quiet := []Class{{Weight: 1, V4: DurationModel{MeanHours: 400000}, V6: DurationModel{MeanHours: 400000}}}
	p.DS, p.NDS = quiet, quiet
	p.StaticFrac = 0
	p.ScrambleFrac = 0
	p.Shift = nil
	p.InfraOutageMeanHours = 2000
	res, err := Run(Config{Profile: p, Subscribers: 200, Hours: 8760, Seed: 77})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Count v4 changes per (region, hour): outages change many
	// subscribers of one region in the same hour.
	type key struct {
		region int
		hour   int64
	}
	perHour := map[key]int{}
	for _, sub := range res.Subscribers {
		for _, st := range sub.V4[1:] {
			perHour[key{sub.Region, st.Start}]++
		}
	}
	correlated := 0
	for _, n := range perHour {
		if n >= 5 {
			correlated++
		}
	}
	if correlated < 3 {
		t.Errorf("correlated change hours = %d, want several (outages affect whole regions)", correlated)
	}
	// Outage-driven delegations still come from the region pool.
	for _, sub := range res.Subscribers {
		for _, st := range sub.V6 {
			if !p.BGP6.Contains(st.Delegated.Addr()) {
				t.Fatalf("delegation %v escaped the aggregate", st.Delegated)
			}
		}
	}
}

func TestValidateCrossCPL(t *testing.T) {
	p := testProfile()
	p.CrossCPL = 10 // shorter than the aggregate
	if err := p.Validate(); err == nil {
		t.Error("CrossCPL below aggregate accepted")
	}
	p = testProfile()
	p.CrossCPL = p.PoolLen6 // not inside the pool
	if err := p.Validate(); err == nil {
		t.Error("CrossCPL at pool length accepted")
	}
}

func TestAdminRenumberMovesEveryone(t *testing.T) {
	p := testProfile()
	quiet := []Class{{Weight: 1, V4: DurationModel{MeanHours: 400000}, V6: DurationModel{MeanHours: 400000}}}
	p.DS, p.NDS = quiet, quiet
	p.StaticFrac = 0
	p.ScrambleFrac = 0
	p.Shift = nil
	p.AdminRenumberAtHours = []int64{500}
	res, err := Run(Config{Profile: p, Subscribers: 120, Hours: 1000, Seed: 91})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	moved4, movedAll := 0, 0
	for _, sub := range res.Subscribers {
		movedAll++
		for _, st := range sub.V4[1:] {
			if st.Start == 500 {
				moved4++
				break
			}
		}
		if sub.DualStack {
			before, after := false, false
			for _, st := range sub.V6 {
				if st.Start < 500 {
					before = true
				}
				if st.Start == 500 {
					after = true
				}
			}
			if before && !after {
				t.Fatalf("dual-stack subscriber %d kept its prefix through renumbering", sub.ID)
			}
		}
	}
	if moved4 != movedAll {
		t.Errorf("%d of %d subscribers moved at the renumbering hour", moved4, movedAll)
	}
}

func TestRemoteProfile(t *testing.T) {
	v4 := []netip.Prefix{netip.MustParsePrefix("10.0.0.0/9")}
	v6 := netip.MustParsePrefix("2001:db8::/34")

	p, err := RemoteProfile("bng/res", 64512, BackendRADIUS, v4, v6, 56, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("remote profile invalid: %v", err)
	}
	if p.PoolLen4 != 11 || p.PoolLen6 != 40 || p.DualStackFrac != 1 {
		t.Errorf("derived pools /%d //%d dsfrac=%g, want /11 //40 1", p.PoolLen4, p.PoolLen6, p.DualStackFrac)
	}
	if len(p.DS) == 0 || !p.DS[0].Coupled || p.DS[0].V4.PeriodHours != 4 {
		t.Errorf("RADIUS classes should renumber on the 4h lease cadence: %+v", p.DS)
	}

	// A sticky DHCP backend gets exponential, decoupled classes.
	p, err = RemoteProfile("bng/biz", 64513, BackendDHCP, v4, v6, 56, 24, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.DS {
		if c.V4.PeriodHours != 0 || c.Coupled {
			t.Errorf("DHCP class should be exponential and decoupled: %+v", c)
		}
	}

	// The v6 pool never outruns the delegation, and a runnable profile
	// comes back even from a tight aggregate.
	p, err = RemoteProfile("bng/tight", 64514, BackendRADIUS, v4, netip.MustParsePrefix("2001:db8::/60"), 61, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.PoolLen6 != 61 || !p.Mobile {
		t.Errorf("tight aggregate: pool //%d mobile=%v, want //61 true", p.PoolLen6, p.Mobile)
	}
	if _, err := Run(Config{Profile: p, Subscribers: 20, Hours: 24, Seed: 3}); err != nil {
		t.Errorf("tight remote profile does not run: %v", err)
	}

	// Rejections.
	bad := []struct {
		name string
		err  func() error
	}{
		{"no name", func() error {
			_, err := RemoteProfile("", 1, BackendRADIUS, v4, v6, 56, 4, false)
			return err
		}},
		{"no v4", func() error {
			_, err := RemoteProfile("x", 1, BackendRADIUS, nil, v6, 56, 4, false)
			return err
		}},
		{"invalid v6", func() error {
			_, err := RemoteProfile("x", 1, BackendRADIUS, v4, netip.Prefix{}, 56, 4, false)
			return err
		}},
		{"delegation above aggregate", func() error {
			_, err := RemoteProfile("x", 1, BackendRADIUS, v4, v6, 34, 4, false)
			return err
		}},
		{"delegation below /64", func() error {
			_, err := RemoteProfile("x", 1, BackendRADIUS, v4, v6, 65, 4, false)
			return err
		}},
	}
	for _, tc := range bad {
		if tc.err() == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}
