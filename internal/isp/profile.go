// Package isp simulates ISP address-assignment practice: regional address
// pools behind DHCPv4/DHCPv6-PD/RADIUS machinery, periodic renumbering,
// outage-driven churn, CPE prefix behaviors, and dual-stack coupling.
//
// The RIPE Atlas and CDN datasets the paper analyzes are unavailable
// offline; this package is the substitution (see DESIGN.md): it encodes the
// paper's published per-AS findings as generative ground truth, so the
// analysis pipeline (internal/core) runs on data with the same dynamics and
// its inferences can be checked against what the generator actually did.
package isp

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
)

// Backend selects the assignment machinery for IPv4.
type Backend int

// Assignment backends.
const (
	// BackendRADIUS models session-based assignment: every session draws
	// a fresh address (Orange, DTAG and most European DSL profiles).
	BackendRADIUS Backend = iota
	// BackendDHCP models sticky DHCP servers that re-offer the same
	// address to returning clients (typical US cable profiles).
	BackendDHCP
)

// CPEMode is how the subscriber's CPE derives the LAN /64 it announces
// inside the delegated prefix (§5.3).
type CPEMode int

// CPE behaviors.
const (
	// CPEZero announces the lowest-numbered /64 of the delegation,
	// leaving the bits between the delegated length and /64 zero.
	CPEZero CPEMode = iota
	// CPEScramble randomizes those bits, and re-randomizes them
	// periodically without any ISP-side change (a feature of many DTAG
	// CPE devices, §5.2 fn. 5).
	CPEScramble
)

// DurationModel generates inter-change intervals for one address family.
// Periodic and exponential components may be combined; the shorter draw
// wins. A model with neither component never fires (static assignment).
type DurationModel struct {
	// PeriodHours is a deterministic renumbering period (24 for DTAG,
	// 168 for Orange, 336 for BT, …). 0 disables.
	PeriodHours float64
	// JitterHours spreads the period uniformly by ±J.
	JitterHours float64
	// MeanHours is the mean of an exponential inter-change time for
	// irregular (outage-like) changes. 0 disables.
	MeanHours float64
}

// Next draws the hours until the next change, or +Inf for a static model.
// The result is at least 1 (the echo dataset's hourly granularity).
func (m DurationModel) Next(rng *rand.Rand) float64 {
	next := math.Inf(1)
	if m.PeriodHours > 0 {
		p := m.PeriodHours
		if m.JitterHours > 0 {
			p += (rng.Float64()*2 - 1) * m.JitterHours
		}
		next = math.Min(next, p)
	}
	if m.MeanHours > 0 {
		next = math.Min(next, rng.ExpFloat64()*m.MeanHours)
	}
	if next < 1 {
		next = 1
	}
	return next
}

// Static reports whether the model never fires.
func (m DurationModel) Static() bool { return m.PeriodHours <= 0 && m.MeanHours <= 0 }

// Class is one behavior class of subscribers within an AS.
type Class struct {
	// Weight is the class's share of its population (normalized over
	// the class list it appears in).
	Weight float64
	// V4 models IPv4 address changes.
	V4 DurationModel
	// V6 models IPv6 delegated-prefix changes (ignored for
	// non-dual-stack subscribers).
	V6 DurationModel
	// Coupled makes IPv4 and IPv6 change together, driven by the V4
	// model (DTAG: 90.6% of changes co-occur, §3.2).
	Coupled bool
}

// PolicyShift is a mid-horizon change of assignment policy.
type PolicyShift struct {
	// AtHour is when the new policy takes effect.
	AtHour int64
	// DSAfter and NDSAfter replace the DS/NDS class lists; nil keeps
	// the original list for that population.
	DSAfter  []Class
	NDSAfter []Class
}

// Profile is the ground-truth description of one AS's assignment practice.
type Profile struct {
	Name    string
	ASN     uint32
	Country string

	// BGP4 lists the announced IPv4 prefixes; v4 pools are carved from
	// them per region. BGP6 is the v6 aggregate (e.g. DTAG's 2003::/19);
	// BGP6Extra adds further announced v6 prefixes for ISPs whose
	// subscribers hop across routed prefixes (Table 2's Free SAS).
	BGP4      []netip.Prefix
	BGP6      netip.Prefix
	BGP6Extra []netip.Prefix

	// Regions is the number of regional pool groups (BRAS/DHCP areas).
	Regions int
	// PoolLen4 is the per-(region, BGP prefix) IPv4 pool length; it
	// controls how often successive assignments stay in the same /24
	// (Table 2's "Diff /24").
	PoolLen4 int
	// PoolLen6 is the per-region IPv6 pool length (§5.2 finds /40 to be
	// a common dynamic-pool size).
	PoolLen6 int
	// DelegatedLen is the prefix length delegated to each CPE
	// (RIPE-690 recommends /56; Netcologne /48; Kabel DE CPEs /62).
	DelegatedLen int

	// CrossBGP4Frac is the probability that an IPv4 change lands in a
	// different announced BGP prefix (Table 2 "Diff BGP (v4)").
	CrossBGP4Frac float64
	// CrossPool6Frac is the probability that an IPv6 change draws from a
	// different regional pool; within BGP6 unless CrossBGP6Frac fires.
	CrossPool6Frac float64
	// CrossBGP6Frac is the probability that such a jump leaves the main
	// aggregate for one of BGP6Extra (Table 2 "Diff BGP (v6)").
	CrossBGP6Frac float64
	// CrossCPL positions the regional pools inside BGP6 so that a
	// cross-pool jump shares about this many leading bits with the
	// previous assignment (the low-CPL secondary mode of Fig. 5 — e.g.
	// BT's 28–32 mode). Zero picks PoolLen6-16, floored at the
	// aggregate length.
	CrossCPL int

	// Backend selects the IPv4 machinery.
	Backend Backend
	// LeaseHours is the DHCP lease / RADIUS session-timeout horizon in
	// hours, bounded below by 1.
	LeaseHours uint32

	// DualStackFrac is the fraction of subscribers with IPv6.
	DualStackFrac float64
	// StaticFrac is the fraction of subscribers with effectively static
	// assignments (the 45% of probes that never changed, §3.1).
	StaticFrac float64

	// DS and NDS are the behavior classes for dual-stack and
	// non-dual-stack subscribers.
	DS  []Class
	NDS []Class

	// ScrambleFrac is the fraction of dual-stack CPEs in CPEScramble
	// mode; ScrambleMeanHours is their re-scramble cadence.
	ScrambleFrac      float64
	ScrambleMeanHours float64

	// AdminRenumberAtHours schedules administrative renumbering events
	// (§2.2: "network restructuring, IP address acquisitions/losses
	// during mergers, and changes in address pools"): at each hour,
	// every region's delegation server renumbers and every non-static
	// subscriber moves to a fresh prefix drawn from virgin pool space.
	AdminRenumberAtHours []int64

	// InfraOutageMeanHours, when positive, schedules exponential
	// ISP-side outages per region: the region's assignment servers lose
	// state (§2.2 "Changes due to outages") and every non-static
	// subscriber in the region draws fresh assignments in the same
	// hour — the correlated-change signature of infrastructure failures.
	// The built-in profiles leave this at 0 because their exponential
	// class models already absorb outage-driven churn statistically.
	InfraOutageMeanHours float64

	// Shift models a policy change during the horizon: §3.2's
	// "Evolution over time" finds assignment durations lengthening over
	// the years, especially in DTAG and Orange. After Shift.AtHour,
	// subscribers re-draw their behavior class from the After lists at
	// their next change. Nil keeps policy stationary.
	Shift *PolicyShift

	// Mobile marks cellular profiles (used by the CDN pipeline).
	Mobile bool
}

// Validate checks a profile for internal consistency.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("isp: profile without name")
	case p.ASN == 0:
		return fmt.Errorf("isp: profile %s: zero ASN", p.Name)
	case len(p.BGP4) == 0:
		return fmt.Errorf("isp: profile %s: no BGP4 prefixes", p.Name)
	case !p.BGP6.IsValid():
		return fmt.Errorf("isp: profile %s: no BGP6 aggregate", p.Name)
	case p.Regions <= 0:
		return fmt.Errorf("isp: profile %s: no regions", p.Name)
	case p.PoolLen6 < p.BGP6.Bits() || p.PoolLen6 > p.DelegatedLen:
		return fmt.Errorf("isp: profile %s: pool /%d incompatible with aggregate %v and delegation /%d",
			p.Name, p.PoolLen6, p.BGP6, p.DelegatedLen)
	case p.DelegatedLen > 64:
		return fmt.Errorf("isp: profile %s: delegation /%d longer than /64", p.Name, p.DelegatedLen)
	case len(p.DS) == 0 && p.DualStackFrac > 0:
		return fmt.Errorf("isp: profile %s: dual-stack fraction without DS classes", p.Name)
	case len(p.NDS) == 0 && p.DualStackFrac < 1:
		return fmt.Errorf("isp: profile %s: non-dual-stack population without NDS classes", p.Name)
	}
	for _, b := range p.BGP4 {
		if p.PoolLen4 < b.Bits() || p.PoolLen4 > 30 {
			return fmt.Errorf("isp: profile %s: v4 pool /%d incompatible with %v", p.Name, p.PoolLen4, b)
		}
	}
	if p.CrossCPL != 0 && (p.CrossCPL < p.BGP6.Bits() || p.CrossCPL >= p.PoolLen6) {
		return fmt.Errorf("isp: profile %s: CrossCPL /%d outside [%d, %d)",
			p.Name, p.CrossCPL, p.BGP6.Bits(), p.PoolLen6)
	}
	return nil
}

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// Profiles returns the built-in ground-truth profiles for the ASes the
// paper reports on (Table 1 plus Sky UK from Fig. 6). The duration models
// encode the paper's measured findings: modes at 24 h (DTAG, Versatel,
// Netcologne), 36 h (Proximus), 1 week (Orange), 2 weeks (BT); long
// dual-stack durations; coupling where the paper found simultaneous
// changes.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "DTAG", ASN: 3320, Country: "DE",
			BGP4:    []netip.Prefix{pfx("79.192.0.0/10"), pfx("87.128.0.0/10"), pfx("91.0.0.0/10"), pfx("217.80.0.0/12")},
			BGP6:    pfx("2003::/19"),
			Regions: 8, PoolLen4: 20, PoolLen6: 40, DelegatedLen: 56,
			CrossBGP4Frac: 0.27, CrossPool6Frac: 0.008, CrossCPL: 24,
			Backend: BackendRADIUS, LeaseHours: 24,
			DualStackFrac: 0.68, StaticFrac: 0.02,
			DS: []Class{
				{Weight: 0.50, V4: DurationModel{PeriodHours: 24, JitterHours: 1}, V6: DurationModel{}, Coupled: true},
				{Weight: 0.50, V4: DurationModel{MeanHours: 2200}, V6: DurationModel{MeanHours: 4000}},
			},
			NDS: []Class{
				{Weight: 0.9, V4: DurationModel{PeriodHours: 24, JitterHours: 1}},
				{Weight: 0.1, V4: DurationModel{MeanHours: 1500}},
			},
			ScrambleFrac: 0.25, ScrambleMeanHours: 700,
			// §3.2 "Evolution over time": DTAG's durations lengthen in
			// the later years as more subscribers leave the 24 h cycle.
			Shift: &PolicyShift{
				AtHour: 26280,
				DSAfter: []Class{
					{Weight: 0.35, V4: DurationModel{PeriodHours: 24, JitterHours: 1}, V6: DurationModel{}, Coupled: true},
					{Weight: 0.65, V4: DurationModel{MeanHours: 3200}, V6: DurationModel{MeanHours: 5200}},
				},
				NDSAfter: []Class{
					{Weight: 0.72, V4: DurationModel{PeriodHours: 24, JitterHours: 1}},
					{Weight: 0.28, V4: DurationModel{MeanHours: 2600}},
				},
			},
		},
		{
			Name: "Comcast", ASN: 7922, Country: "US",
			BGP4:      []netip.Prefix{pfx("24.0.0.0/12"), pfx("67.160.0.0/11"), pfx("73.0.0.0/8"), pfx("98.192.0.0/10")},
			BGP6:      pfx("2601::/20"),
			BGP6Extra: []netip.Prefix{pfx("2603:3000::/24")},
			Regions:   8, PoolLen4: 23, PoolLen6: 40, DelegatedLen: 60,
			CrossBGP4Frac: 0.43, CrossPool6Frac: 0.12, CrossBGP6Frac: 0.8, CrossCPL: 34,
			Backend: BackendDHCP, LeaseHours: 96,
			DualStackFrac: 0.68, StaticFrac: 0.05,
			DS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 9000}, V6: DurationModel{MeanHours: 5000}},
			},
			NDS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 7000}},
			},
		},
		{
			Name: "Orange", ASN: 3215, Country: "FR",
			BGP4:      []netip.Prefix{pfx("90.0.0.0/9"), pfx("86.192.0.0/11"), pfx("92.128.0.0/10"), pfx("176.128.0.0/10")},
			BGP6:      pfx("2a01:c000::/19"),
			BGP6Extra: []netip.Prefix{pfx("2a01:9000::/20")},
			Regions:   8, PoolLen4: 18, PoolLen6: 40, DelegatedLen: 56,
			CrossBGP4Frac: 0.60, CrossPool6Frac: 0.03, CrossBGP6Frac: 0.7, CrossCPL: 36,
			Backend: BackendRADIUS, LeaseHours: 168,
			DualStackFrac: 0.55, StaticFrac: 0.03,
			DS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 2600}, V6: DurationModel{MeanHours: 16000}},
			},
			NDS: []Class{
				{Weight: 0.92, V4: DurationModel{PeriodHours: 168, JitterHours: 2}},
				{Weight: 0.08, V4: DurationModel{MeanHours: 3000}},
			},
			// Orange also drifts toward longer durations (§3.2).
			Shift: &PolicyShift{
				AtHour: 26280,
				NDSAfter: []Class{
					{Weight: 0.7, V4: DurationModel{PeriodHours: 168, JitterHours: 2}},
					{Weight: 0.3, V4: DurationModel{MeanHours: 4500}},
				},
			},
		},
		{
			Name: "LGI", ASN: 6830, Country: "EU",
			BGP4:      []netip.Prefix{pfx("80.56.0.0/14"), pfx("84.104.0.0/14"), pfx("62.140.0.0/15"), pfx("94.208.0.0/12")},
			BGP6:      pfx("2001:4c40::/22"),
			BGP6Extra: []netip.Prefix{pfx("2a02:5800::/21")},
			Regions:   6, PoolLen4: 23, PoolLen6: 44, DelegatedLen: 60,
			CrossBGP4Frac: 0.14, CrossPool6Frac: 0.04, CrossBGP6Frac: 0.5, CrossCPL: 36,
			Backend: BackendDHCP, LeaseHours: 48,
			DualStackFrac: 0.32, StaticFrac: 0.04,
			DS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 650}, V6: DurationModel{MeanHours: 12000}},
			},
			NDS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 1500}},
			},
		},
		{
			Name: "Free SAS", ASN: 12322, Country: "FR",
			BGP4:      []netip.Prefix{pfx("78.192.0.0/10"), pfx("82.224.0.0/11")},
			BGP6:      pfx("2a01:e000::/26"),
			BGP6Extra: []netip.Prefix{pfx("2a01:e400::/26")},
			Regions:   4, PoolLen4: 19, PoolLen6: 40, DelegatedLen: 60,
			CrossBGP4Frac: 0.72, CrossPool6Frac: 0.5, CrossBGP6Frac: 0.85, CrossCPL: 30,
			Backend: BackendRADIUS, LeaseHours: 168,
			DualStackFrac: 0.65, StaticFrac: 0.25,
			DS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 9000}, V6: DurationModel{MeanHours: 42000}},
			},
			NDS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 8000}},
			},
		},
		{
			Name: "Kabel DE", ASN: 31334, Country: "DE",
			BGP4:      []netip.Prefix{pfx("95.112.0.0/13"), pfx("188.192.0.0/11")},
			BGP6:      pfx("2a02:8100::/21"),
			BGP6Extra: []netip.Prefix{pfx("2a02:908::/29")},
			Regions:   5, PoolLen4: 20, PoolLen6: 42, DelegatedLen: 62,
			CrossBGP4Frac: 0.60, CrossPool6Frac: 0.07, CrossBGP6Frac: 0.7, CrossCPL: 30,
			Backend: BackendDHCP, LeaseHours: 72,
			DualStackFrac: 0.55, StaticFrac: 0.05,
			DS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 4200}, V6: DurationModel{MeanHours: 15000}},
			},
			NDS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 3500}},
			},
		},
		{
			Name: "Proximus", ASN: 5432, Country: "BE",
			BGP4:    []netip.Prefix{pfx("81.240.0.0/13"), pfx("91.176.0.0/13"), pfx("109.128.0.0/13")},
			BGP6:    pfx("2a02:a000::/21"),
			Regions: 5, PoolLen4: 19, PoolLen6: 40, DelegatedLen: 56,
			CrossBGP4Frac: 0.56, CrossPool6Frac: 0.008, CrossCPL: 32,
			Backend: BackendRADIUS, LeaseHours: 36,
			DualStackFrac: 0.56, StaticFrac: 0.03,
			DS: []Class{
				{Weight: 0.45, V4: DurationModel{PeriodHours: 36, JitterHours: 2}, V6: DurationModel{}, Coupled: true},
				{Weight: 0.55, V4: DurationModel{MeanHours: 2800}, V6: DurationModel{MeanHours: 4500}},
			},
			NDS: []Class{
				{Weight: 0.85, V4: DurationModel{PeriodHours: 36, JitterHours: 2}},
				{Weight: 0.15, V4: DurationModel{MeanHours: 2500}},
			},
		},
		{
			Name: "Versatel", ASN: 8881, Country: "DE",
			BGP4:      []netip.Prefix{pfx("84.128.0.0/11"), pfx("89.244.0.0/14")},
			BGP6:      pfx("2001:16b8::/32"),
			BGP6Extra: []netip.Prefix{pfx("2001:1438::/32")},
			Regions:   4, PoolLen4: 20, PoolLen6: 44, DelegatedLen: 56,
			CrossBGP4Frac: 0.59, CrossPool6Frac: 0.012, CrossBGP6Frac: 0.85, CrossCPL: 36,
			Backend: BackendRADIUS, LeaseHours: 24,
			DualStackFrac: 0.71, StaticFrac: 0.01,
			DS: []Class{
				{Weight: 0.85, V4: DurationModel{PeriodHours: 24, JitterHours: 1}, V6: DurationModel{}, Coupled: true},
				{Weight: 0.15, V4: DurationModel{MeanHours: 2000}, V6: DurationModel{MeanHours: 3000}},
			},
			NDS: []Class{
				{Weight: 1, V4: DurationModel{PeriodHours: 24, JitterHours: 1}},
			},
		},
		{
			Name: "BT", ASN: 2856, Country: "GB",
			BGP4:    []netip.Prefix{pfx("81.128.0.0/12"), pfx("86.128.0.0/11"), pfx("109.144.0.0/12")},
			BGP6:    pfx("2a00:2300::/28"),
			Regions: 6, PoolLen4: 20, PoolLen6: 44, DelegatedLen: 56,
			CrossBGP4Frac: 0.45, CrossPool6Frac: 0.18, CrossCPL: 28,
			Backend: BackendRADIUS, LeaseHours: 336,
			DualStackFrac: 0.34, StaticFrac: 0.05,
			DS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 4200}, V6: DurationModel{MeanHours: 11000}},
			},
			NDS: []Class{
				{Weight: 0.88, V4: DurationModel{PeriodHours: 336, JitterHours: 4}},
				{Weight: 0.12, V4: DurationModel{MeanHours: 4000}},
			},
		},
		{
			Name: "Netcologne", ASN: 8422, Country: "DE",
			BGP4:      []netip.Prefix{pfx("78.34.0.0/15"), pfx("87.78.0.0/15")},
			BGP6:      pfx("2001:4dd0::/29"),
			BGP6Extra: []netip.Prefix{pfx("2001:4de8::/29")},
			Regions:   3, PoolLen4: 19, PoolLen6: 36, DelegatedLen: 48,
			CrossBGP4Frac: 0.61, CrossPool6Frac: 0.09, CrossBGP6Frac: 0.8, CrossCPL: 31,
			Backend: BackendRADIUS, LeaseHours: 24,
			DualStackFrac: 0.93, StaticFrac: 0.01,
			DS: []Class{
				{Weight: 0.8, V4: DurationModel{PeriodHours: 24, JitterHours: 1}, V6: DurationModel{}, Coupled: true},
				{Weight: 0.2, V4: DurationModel{MeanHours: 1800}, V6: DurationModel{MeanHours: 2600}},
			},
			NDS: []Class{
				{Weight: 1, V4: DurationModel{PeriodHours: 24, JitterHours: 1}},
			},
		},
		{
			Name: "Sky UK", ASN: 5607, Country: "GB",
			BGP4:    []netip.Prefix{pfx("90.192.0.0/11"), pfx("2.24.0.0/13")},
			BGP6:    pfx("2a02:c7c0::/27"),
			Regions: 5, PoolLen4: 20, PoolLen6: 40, DelegatedLen: 56,
			CrossBGP4Frac: 0.50, CrossPool6Frac: 0.04, CrossCPL: 32,
			Backend: BackendDHCP, LeaseHours: 168,
			DualStackFrac: 0.80, StaticFrac: 0.05,
			DS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 5200}, V6: DurationModel{MeanHours: 30000}},
			},
			NDS: []Class{
				{Weight: 1, V4: DurationModel{MeanHours: 5000}},
			},
		},
	}
}

// ProfileByName returns the built-in profile with the given name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// RemoteProfile builds a runnable Profile from the pool layout of a
// live assignment-plane daemon (dynamips serve-bng): the daemon's
// published pool prefixes and lease cadence become the generative
// ground truth, with class mixes derived heuristically from the
// backend. The daemon's groups are fully dual-stack, so the profile
// is too. The result passes Validate.
func RemoteProfile(name string, asn uint32, backend Backend, v4 []netip.Prefix, v6 netip.Prefix, delegatedLen int, leaseHours uint32, mobile bool) (Profile, error) {
	if name == "" {
		return Profile{}, fmt.Errorf("isp: remote profile without name")
	}
	if len(v4) == 0 {
		return Profile{}, fmt.Errorf("isp: remote profile %s: no IPv4 pools", name)
	}
	if !v6.IsValid() {
		return Profile{}, fmt.Errorf("isp: remote profile %s: no IPv6 aggregate", name)
	}
	if delegatedLen <= v6.Bits() || delegatedLen > 64 {
		return Profile{}, fmt.Errorf("isp: remote profile %s: delegation /%d outside (%d, 64]",
			name, delegatedLen, v6.Bits())
	}
	if leaseHours < 1 {
		leaseHours = 1
	}
	// Two regional pool groups, carved one level below the announced
	// prefixes: v4 pools two bits below the longest announcement
	// (capped at /30, the Validate ceiling), v6 pools six bits below
	// the aggregate (capped at the delegation length so at least one
	// delegation fits per pool).
	pool4 := 0
	for _, p := range v4 {
		if p.Bits() > pool4 {
			pool4 = p.Bits()
		}
	}
	pool4 += 2
	if pool4 > 30 {
		pool4 = 30
	}
	pool6 := v6.Bits() + 6
	if pool6 > delegatedLen {
		pool6 = delegatedLen
	}
	lease := float64(leaseHours)
	p := Profile{
		Name: name, ASN: asn, Country: "ZZ",
		BGP4:    append([]netip.Prefix(nil), v4...),
		BGP6:    v6,
		Regions: 2, PoolLen4: pool4, PoolLen6: pool6, DelegatedLen: delegatedLen,
		CrossPool6Frac: 0.01,
		Backend:        backend, LeaseHours: leaseHours,
		DualStackFrac: 1, StaticFrac: 0.05,
		Mobile: mobile,
	}
	if len(v4) > 1 {
		p.CrossBGP4Frac = 0.2
	}
	switch backend {
	case BackendDHCP:
		// Sticky servers re-offer the same address: changes are rare
		// and outage-like, decoupled across families.
		p.DS = []Class{
			{Weight: 0.7, V4: DurationModel{MeanHours: 40 * lease}, V6: DurationModel{MeanHours: 80 * lease}},
			{Weight: 0.3, V4: DurationModel{MeanHours: 120 * lease}, V6: DurationModel{MeanHours: 240 * lease}},
		}
	default:
		// Session-based assignment renumbers on the lease cadence for
		// most subscribers, with a long-duration exponential tail.
		p.DS = []Class{
			{Weight: 0.6, V4: DurationModel{PeriodHours: lease, JitterHours: 1}, Coupled: true},
			{Weight: 0.4, V4: DurationModel{MeanHours: 24 * lease}, V6: DurationModel{MeanHours: 48 * lease}},
		}
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}
